package concurrent

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/trace"
)

// This file is the batched serving engine. Where Replay drives shards
// with one unbounded goroutine per stream and one lock acquisition per
// access, the Engine routes requests through lock-free per-(producer,
// shard) SPSC rings consumed by one persistent worker goroutine per
// shard:
//
//	producer p              lanes[p][s]                worker s
//	┌───────────────┐   data ────────────▶   ┌──────────────────────┐
//	│ partition the │   ring  [b][b][ ][ ]   │ pop → one TryLock →  │
//	│ next chunk by │                        │ Access+Observe batch │
//	│ shard (count- │   free ◀────────────   │ → recycle the buffer │
//	│ ing sort)     │   ring  [ ][ ][b][b]   └──────────────────────┘
//	└───────────────┘
//
// Each producer partitions one BatchSize-request chunk by shard in a
// single pass and touches each ring at most once per chunk; each worker
// serves a popped batch under a single lock acquisition. The bounded
// rings are the backpressure (a producer whose ring is full spins until
// the worker catches up), the free rings recycle batch buffers without a
// shared lock, and cancellation follows the sweep engine's claimed-chunk
// invariant: a batch a worker has started is processed to completion,
// everything still queued or unrouted is abandoned, and ctx's error is
// returned iff requests were dropped.

// BatchConfig tunes the batched replay engine. The zero value selects
// the defaults.
type BatchConfig struct {
	// BatchSize is the number of requests a producer routes in one
	// partition pass (default 256). Larger chunks amortize ring and lock
	// traffic further at the cost of coarser cancellation and more
	// reordering between streams.
	BatchSize int
	// QueueDepth is the number of batches buffered per producer→shard
	// ring (default 4, rounded up to a power of two). Producers routing
	// to a full ring spin-wait — the backpressure that bounds engine
	// memory at O(producers · shards · QueueDepth · BatchSize) regardless
	// of trace length.
	QueueDepth int
	// Deterministic selects the differential-testing mode: one ring, one
	// worker, streams merged round-robin one request at a time. The
	// replay order — and therefore every statistic — is then a pure
	// function of the input streams, byte-identical to driving
	// Sharded.Access sequentially over the same interleaving.
	// SplitStreams(tr, n) replayed deterministically reconstructs tr's
	// original order exactly.
	Deterministic bool
	// PinWorkers locks each shard worker goroutine to its own OS thread
	// (runtime.LockOSThread) for the engine's lifetime, preventing the
	// scheduler from migrating workers between cores mid-replay and
	// keeping each shard's cache state warm on one core. Off by default;
	// it helps steady high-rate replays on multicore machines and is
	// wasted overhead for short or low-rate runs.
	PinWorkers bool
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.BatchSize < 1 {
		c.BatchSize = 256
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 4
	}
	return c
}

// lane is one producer→shard channel pair: data carries filled batches
// toward the shard's worker, free carries spent buffers back to the
// producer. Both rings are SPSC by construction — the lane belongs to
// exactly one producer slot and exactly one worker.
type lane struct {
	data batchRing
	free batchRing
}

// producerState is one producer slot's routing scratch and progress
// counters. Only the slot's current producer goroutine touches the
// scratch; pushed is published to the replay coordinator through the
// done generation counter.
type producerState struct {
	row int // index into Engine.lanes
	// done publishes the last replay generation this slot has finished
	// producing for (see Engine.gen).
	done atomic.Uint64
	// pushed counts batches enqueued during the current replay. Plain
	// field: written before done.Store, read after done.Load.
	pushed uint64
	// Partition scratch, reused across chunks (see routeChunk).
	idxs    []uint32       // shard index per chunk position
	counts  []uint32       // per-shard occupancy, zeroed after each chunk
	touched []uint32       // shards hit by the current chunk
	bufs    [][]model.Item // per-shard batch under construction
	stage   []model.Item   // staging chunk for source/merged production
	_       [64]byte       // keep producer slots off each other's lines
}

// workerState is one worker's progress counters, padded so workers
// never contend on a shared cache line.
type workerState struct {
	popped  atomic.Uint64 // batches taken from rings (processed or dropped)
	dropped uint64        // batches recycled unprocessed after cancellation
	_       [48]byte
}

// Engine is a persistent batched replay engine over a Sharded cache:
// construction allocates the rings and starts the worker (and producer)
// goroutines once, after which any number of Replay / ReplayStream
// calls run allocation-free in the steady state. An Engine serves one
// replay at a time; Close stops the goroutines (safe to call once the
// last replay has returned). For one-shot replays the ReplayCtx /
// ReplayStreamCtx wrappers construct and close a throwaway Engine.
type Engine struct {
	s   *Sharded
	cfg BatchConfig

	lanes     [][]lane // [producer][worker]
	producers []producerState
	workers   []workerState

	gen    atomic.Uint64 // replay generation; bumped to release producers
	closed atomic.Bool
	busy   atomic.Bool
	wg     sync.WaitGroup

	// Per-replay state, written by the coordinator before the generation
	// bump (or used only by the caller-side producer).
	streams   []trace.Trace
	replayCtx context.Context //gclint:ctxok per-replay handoff: coordinator writes before the gen bump, producer goroutines read; cleared when the replay drains
	cancelled atomic.Bool

	errMu    sync.Mutex
	firstErr error
}

// NewEngine builds a persistent batched engine over s with the given
// number of producer slots. producers bounds the parallelism of
// Replay's stream production (streams are dealt round-robin across the
// slots) and sizes the ring matrix; ReplayStream always produces from
// the caller through slot 0. In deterministic mode the topology
// collapses to one ring and one worker regardless of producers.
func NewEngine(s *Sharded, producers int, cfg BatchConfig) (*Engine, error) {
	if s == nil {
		return nil, fmt.Errorf("concurrent: nil sharded cache")
	}
	if producers < 1 {
		return nil, fmt.Errorf("concurrent: producer count %d < 1", producers)
	}
	cfg = cfg.withDefaults()
	np, nw := producers, len(s.shards)
	if cfg.Deterministic {
		np, nw = 1, 1
	}
	e := &Engine{s: s, cfg: cfg}
	e.lanes = make([][]lane, np)
	for p := range e.lanes {
		e.lanes[p] = make([]lane, nw)
		for w := range e.lanes[p] {
			ln := &e.lanes[p][w]
			ln.data.init(cfg.QueueDepth)
			// A lane circulates at most cap(data)+2 buffers (a full data
			// ring + the producer's in-hand + the worker's in-hand), so a
			// free ring of that capacity never drops one — the steady
			// state stays allocation free.
			ln.free.init(len(ln.data.slots) + 2)
		}
	}
	e.producers = make([]producerState, np)
	for i := range e.producers {
		ps := &e.producers[i]
		ps.row = i
		ps.idxs = make([]uint32, cfg.BatchSize)
		ps.counts = make([]uint32, nw)
		ps.touched = make([]uint32, 0, nw)
		ps.bufs = make([][]model.Item, nw)
		ps.stage = make([]model.Item, 0, cfg.BatchSize)
	}
	e.workers = make([]workerState, nw)
	e.wg.Add(nw)
	for w := 0; w < nw; w++ {
		go e.workerLoop(w)
	}
	if !cfg.Deterministic {
		// Deterministic replays produce from the calling goroutine (the
		// round-robin merge is inherently sequential); otherwise each
		// slot gets a persistent producer goroutine.
		e.wg.Add(np)
		for p := 0; p < np; p++ {
			go e.producerLoop(p)
		}
	}
	return e, nil
}

// Close stops the engine's goroutines and waits for them to exit. It
// must not be called while a replay is in flight; calling it again is a
// no-op.
func (e *Engine) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	e.wg.Wait()
}

// begin resets the per-replay state. Safe because all goroutines are
// quiescent between replays: producers wait on gen, workers find every
// ring empty, and the previous replay's counter reads are sequenced
// through the popped/done atomics.
func (e *Engine) begin(ctx context.Context) error {
	if e.closed.Load() {
		return fmt.Errorf("concurrent: Replay on a closed Engine")
	}
	if !e.busy.CompareAndSwap(false, true) {
		return fmt.Errorf("concurrent: concurrent Replay calls on one Engine")
	}
	e.replayCtx = ctx
	e.cancelled.Store(false)
	e.firstErr = nil
	e.streams = nil
	for i := range e.producers {
		e.producers[i].pushed = 0
	}
	for i := range e.workers {
		e.workers[i].popped.Store(0)
		e.workers[i].dropped = 0
	}
	return nil
}

// fail records the first production error and flips the cancellation
// flag workers poll, so queued batches are recycled instead of served.
func (e *Engine) fail(err error) {
	e.cancelled.Store(true)
	e.errMu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.errMu.Unlock()
}

// Replay replays streams through the engine and returns the merged
// statistics (cumulative for the underlying Sharded, like Replay).
// Streams are dealt round-robin across the producer slots; in
// deterministic mode the calling goroutine merges them round-robin one
// request at a time instead. The error is nil when every request was
// replayed and ctx's error when cancellation cut the replay short; the
// statistics then cover exactly the batches workers had claimed.
func (e *Engine) Replay(ctx context.Context, streams []trace.Trace) (cachesim.Stats, error) {
	if err := e.begin(ctx); err != nil {
		return cachesim.Stats{}, err
	}
	defer e.busy.Store(false)

	var total uint64
	if e.cfg.Deterministic {
		if err := e.produceMerged(ctx, streams); err != nil {
			e.fail(err)
		}
		total = e.producers[0].pushed
	} else {
		e.streams = streams
		gen := e.gen.Add(1)
		var w spinWait
		for i := range e.producers {
			for e.producers[i].done.Load() != gen {
				w.wait()
			}
			total += e.producers[i].pushed
		}
	}
	e.awaitDrain(total)
	return e.s.Stats(), e.takeErr()
}

// ReplayStream replays a single incremental trace.Source through the
// engine — the O(1)-memory serving path: requests go straight from the
// decoder into the rings, so a trace larger than memory streams through
// without ever materializing. The calling goroutine is the producer
// (slot 0). Cancellation semantics match Replay; a source decode error
// is returned after the requests before it have been replayed.
func (e *Engine) ReplayStream(ctx context.Context, src trace.Source) (cachesim.Stats, error) {
	if err := e.begin(ctx); err != nil {
		return cachesim.Stats{}, err
	}
	defer e.busy.Store(false)

	ps := &e.producers[0]
	stage := ps.stage[:0]
	var perr error
	for src.Next() {
		stage = append(stage, src.Item())
		if len(stage) == e.cfg.BatchSize {
			if perr = e.routeChunk(ctx, ps, stage); perr != nil {
				break
			}
			stage = stage[:0]
		}
	}
	if perr == nil && len(stage) > 0 {
		perr = e.routeChunk(ctx, ps, stage)
	}
	if perr == nil {
		if err := src.Err(); err != nil {
			perr = fmt.Errorf("concurrent: replay source: %w", err)
		}
	}
	if perr != nil {
		e.fail(perr)
	}
	e.awaitDrain(ps.pushed)
	return e.s.Stats(), e.takeErr()
}

// awaitDrain blocks until the workers have taken every pushed batch
// out of the rings (processing or dropping it).
func (e *Engine) awaitDrain(total uint64) {
	var w spinWait
	for {
		var popped uint64
		for i := range e.workers {
			popped += e.workers[i].popped.Load()
		}
		if popped == total {
			return
		}
		w.wait()
	}
}

// takeErr resolves the replay's error under the ctx.Err-iff-dropped
// contract: fail() pairs every cancellation with its error, so firstErr
// is non-nil exactly when requests were dropped (at a producer or,
// via the cancelled flag, in a worker).
func (e *Engine) takeErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

// producerLoop is one producer slot's persistent goroutine: it sleeps
// until the coordinator bumps the replay generation, produces its share
// of the streams, and publishes completion through done.
func (e *Engine) producerLoop(p int) {
	defer e.wg.Done()
	ps := &e.producers[p]
	var last uint64
	var idle spinWait
	for {
		g := e.gen.Load()
		if g == last {
			if e.closed.Load() {
				return
			}
			idle.wait()
			continue
		}
		idle.reset()
		last = g
		e.runProducer(ps)
		ps.done.Store(g)
	}
}

// runProducer routes this slot's share of the streams (dealt
// round-robin by index) in BatchSize chunks.
func (e *Engine) runProducer(ps *producerState) {
	ctx := e.replayCtx
	np := len(e.producers)
	for i := ps.row; i < len(e.streams); i += np {
		st := e.streams[i]
		for off := 0; off < len(st); off += e.cfg.BatchSize {
			end := off + e.cfg.BatchSize
			if end > len(st) {
				end = len(st)
			}
			if err := e.routeChunk(ctx, ps, st[off:end]); err != nil {
				e.fail(err)
				return
			}
		}
	}
}

// routeChunk partitions one chunk of at most BatchSize requests by
// shard — a counting sort over shard indices into the slot's reused
// scratch buffers — and pushes each shard's sub-batch into its ring, so
// every ring is touched at most once per chunk. It polls ctx once per
// chunk (the cancellation granularity) and while blocked on a full
// ring (the backpressure point).
//
//gclint:hotpath
func (e *Engine) routeChunk(ctx context.Context, ps *producerState, items []model.Item) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(e.workers) == 1 {
		// Single lane (deterministic mode or a 1-shard cache): the
		// partition is the identity, so ship the chunk as one batch.
		return e.sendChunk(ctx, ps, items) //gclint:allowalloc takeBuf's make runs ≤QueueDepth+2 times per lane, then the free ring recycles
	}
	// Pass 1: shard index per item, plus the set of shards touched.
	idxs := ps.idxs[:len(items)]
	touched := ps.touched[:0]
	for i, it := range items {
		x := uint32(e.s.shardIndex(it))
		idxs[i] = x
		if ps.counts[x] == 0 {
			touched = append(touched, x)
		}
		ps.counts[x]++
	}
	// Pass 2: one recycled buffer per touched shard, then scatter.
	for _, x := range touched {
		ps.bufs[x] = e.takeBuf(&e.lanes[ps.row][x]) //gclint:allowalloc bounded warm-up: make runs ≤QueueDepth+2 times per lane, then the free ring recycles
	}
	for i, it := range items {
		x := idxs[i]
		ps.bufs[x] = append(ps.bufs[x], it)
	}
	// Pass 3: one ring push per touched shard.
	for n, x := range touched {
		ps.counts[x] = 0
		if err := e.send(ctx, &e.lanes[ps.row][x], &ps.pushed, ps.bufs[x]); err != nil {
			ps.bufs[x] = nil
			e.abandonChunk(ps, touched[n+1:])
			return err
		}
		ps.bufs[x] = nil
	}
	return nil
}

// abandonChunk drops the not-yet-sent sub-batches of a chunk whose
// send was interrupted by cancellation. Cold path; the buffers go to
// the GC rather than the free rings, whose single producer is the
// worker side — a producer push there would break the SPSC ownership.
func (e *Engine) abandonChunk(ps *producerState, rest []uint32) {
	for _, x := range rest {
		ps.counts[x] = 0
		ps.bufs[x] = nil
	}
}

// sendChunk ships one chunk as a single batch down the sole lane.
func (e *Engine) sendChunk(ctx context.Context, ps *producerState, items []model.Item) error {
	ln := &e.lanes[ps.row][0]
	b := append(e.takeBuf(ln), items...)
	return e.send(ctx, ln, &ps.pushed, b)
}

// takeBuf returns an empty batch buffer for the lane, recycling a spent
// one when available. The make path runs at most QueueDepth+2 times per
// lane over the engine's lifetime (the circulation bound), after which
// the free ring always has a buffer — the steady state is allocation
// free.
func (e *Engine) takeBuf(ln *lane) []model.Item {
	if b, ok := ln.free.pop(); ok {
		return b
	}
	return make([]model.Item, 0, e.cfg.BatchSize)
}

// send pushes one batch, spinning through the scheduler while the ring
// is full. This is the engine's backpressure point and therefore the
// only place a producer can block; it polls ctx so cancellation can
// interrupt the wait, recycling the unsent batch.
//
//gclint:hotpath
func (e *Engine) send(ctx context.Context, ln *lane, pushed *uint64, b []model.Item) error {
	for !ln.data.push(b) {
		if err := ctx.Err(); err != nil {
			return err // b goes to the GC; free's producer is the worker
		}
		runtime.Gosched()
	}
	*pushed++
	return nil
}

// produceMerged is the deterministic producer, run on the calling
// goroutine: one pass merging streams round-robin, one request at a
// time, into the single ring in BatchSize batches.
func (e *Engine) produceMerged(ctx context.Context, streams []trace.Trace) error {
	ps := &e.producers[0]
	stage := ps.stage[:0]
	remaining := len(streams)
	for pos := 0; remaining > 0; pos++ {
		remaining = 0
		for _, st := range streams {
			if pos >= len(st) {
				continue
			}
			remaining++
			stage = append(stage, st[pos])
			if len(stage) == e.cfg.BatchSize {
				if err := e.routeChunk(ctx, ps, stage); err != nil {
					return err
				}
				stage = stage[:0]
			}
		}
	}
	if len(stage) > 0 {
		return e.routeChunk(ctx, ps, stage)
	}
	return nil
}

// workerLoop is one shard's persistent consumer: it drains the shard's
// column of the lane matrix, serving each popped batch under a single
// lock acquisition, and recycles the buffer to the lane it came from.
// After cancellation (the cancelled flag, set together with the
// recorded error) it recycles batches unprocessed so producers blocked
// on full rings are never wedged and the statistics cover exactly the
// claimed batches.
func (e *Engine) workerLoop(w int) {
	defer e.wg.Done()
	if e.cfg.PinWorkers {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	ws := &e.workers[w]
	det := e.cfg.Deterministic
	depth := e.cfg.QueueDepth
	var idle spinWait
	for {
		worked := false
		for p := range e.lanes {
			ln := &e.lanes[p][w]
			// Cap consecutive pops per lane so one fast producer cannot
			// starve the others' full rings indefinitely.
			for n := 0; n < depth; n++ {
				b, ok := ln.data.pop()
				if !ok {
					break
				}
				worked = true
				switch {
				case e.cancelled.Load():
					ws.dropped++ // plain: ordered by the popped.Add below
				case det:
					for _, it := range b {
						e.s.Access(it)
					}
				default:
					e.s.accessBatch(w, b)
				}
				ln.free.push(b[:0])
				ws.popped.Add(1)
			}
		}
		if worked {
			idle.reset()
			continue
		}
		if e.closed.Load() {
			return
		}
		idle.wait()
	}
}

// accessBatch serves one routed batch entirely within shard idx under a
// single lock acquisition — the batched counterpart of Access. Every
// item in b must hash to shard idx.
//
//gclint:hotpath
func (s *Sharded) accessBatch(idx int, b []model.Item) {
	sh := &s.shards[idx]
	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		sh.mu.Lock()
	}
	sh.acquired.Add(1)
	for _, it := range b {
		a := sh.c.Access(it)
		sh.rec.Observe(it, a)
	}
	sh.mu.Unlock()
}

// ReplayCtx replays streams through s on the batched engine and returns
// the merged statistics (cumulative for s, like Replay). It builds a
// throwaway Engine with one producer slot per non-empty stream; hold a
// persistent Engine instead when replaying repeatedly. The error is nil
// when every request was replayed and ctx's error when cancellation cut
// the replay short; the statistics then cover exactly the batches
// workers had claimed.
func ReplayCtx(ctx context.Context, s *Sharded, streams []trace.Trace, cfg BatchConfig) (cachesim.Stats, error) {
	n := 0
	for _, st := range streams {
		if len(st) > 0 {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	e, err := NewEngine(s, n, cfg)
	if err != nil {
		return cachesim.Stats{}, err
	}
	defer e.Close()
	return e.Replay(ctx, streams)
}

// ReplayStreamCtx replays a single incremental trace.Source through s
// on the batched engine — see Engine.ReplayStream. It builds a
// throwaway Engine; hold a persistent one when replaying repeatedly.
func ReplayStreamCtx(ctx context.Context, s *Sharded, src trace.Source, cfg BatchConfig) (cachesim.Stats, error) {
	e, err := NewEngine(s, 1, cfg)
	if err != nil {
		return cachesim.Stats{}, err
	}
	defer e.Close()
	return e.ReplayStream(ctx, src)
}
