package concurrent

import (
	"context"
	"fmt"
	"sync"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/trace"
)

// This file is the batched serving engine: where Replay drives shards
// with one unbounded goroutine per stream and one lock acquisition per
// access, ReplayCtx routes requests into bounded per-shard batch queues
// consumed by one worker goroutine per shard. Batching amortizes the
// shard lock over BatchSize accesses, the bounded queues give
// backpressure (producers block instead of buffering the whole trace),
// and cancellation follows the sweep engine's claimed-chunk invariant:
// a batch a worker has started is processed to completion, everything
// still queued or unrouted is abandoned.

// BatchConfig tunes the batched replay engine. The zero value selects
// the defaults.
type BatchConfig struct {
	// BatchSize is the number of requests routed into one batch before
	// it is enqueued to its shard (default 256). Larger batches amortize
	// the shard lock further at the cost of coarser cancellation and
	// more reordering between streams.
	BatchSize int
	// QueueDepth is the number of batches buffered per shard queue
	// (default 4). Producers routing to a full queue block — the
	// backpressure that bounds engine memory at
	// O(shards · QueueDepth · BatchSize) regardless of trace length.
	QueueDepth int
	// Deterministic selects the differential-testing mode: one queue,
	// one worker, streams merged round-robin one request at a time. The
	// replay order — and therefore every statistic — is then a pure
	// function of the input streams, byte-identical to driving
	// Sharded.Access sequentially over the same interleaving.
	// SplitStreams(tr, n) replayed deterministically reconstructs tr's
	// original order exactly.
	Deterministic bool
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.BatchSize < 1 {
		c.BatchSize = 256
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 4
	}
	return c
}

// batchEngine carries one replay's queues and buffer recycling.
type batchEngine struct {
	s   *Sharded
	cfg BatchConfig
	// queues has one entry per shard, or exactly one in deterministic
	// mode. Closed by the coordinator once every producer has flushed.
	queues []chan []model.Item
	// free recycles batch buffers between workers and producers;
	// non-blocking on both sides (overflow is left to the GC), so the
	// engine can never deadlock on its own recycling.
	free chan []model.Item
}

func newBatchEngine(s *Sharded, cfg BatchConfig) *batchEngine {
	nq := len(s.shards)
	if cfg.Deterministic {
		nq = 1
	}
	e := &batchEngine{
		s:      s,
		cfg:    cfg,
		queues: make([]chan []model.Item, nq),
		free:   make(chan []model.Item, nq*(cfg.QueueDepth+2)),
	}
	for i := range e.queues {
		e.queues[i] = make(chan []model.Item, cfg.QueueDepth)
	}
	return e
}

func (e *batchEngine) getBatch() []model.Item {
	select {
	case b := <-e.free:
		return b[:0]
	default:
		return make([]model.Item, 0, e.cfg.BatchSize)
	}
}

func (e *batchEngine) putBatch(b []model.Item) {
	select {
	case e.free <- b:
	default: // recycling is best-effort; the GC takes the overflow
	}
}

// startWorkers launches the consumer side and returns a wait function.
// In deterministic mode a single worker drains the single queue through
// Sharded.Access, preserving submission order exactly; otherwise one
// worker per shard drains that shard's queue a batch at a time under
// one lock acquisition per batch. Workers drain their queue to the end
// even after cancellation — recycling, not processing, the leftovers —
// so producers are never wedged on a full queue.
func (e *batchEngine) startWorkers(ctx context.Context) (wait func()) {
	var wg sync.WaitGroup
	for i := range e.queues {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for b := range e.queues[idx] {
				if ctx.Err() != nil {
					e.putBatch(b)
					continue
				}
				if e.cfg.Deterministic {
					for _, it := range b {
						e.s.Access(it)
					}
				} else {
					e.s.accessBatch(idx, b)
				}
				e.putBatch(b)
			}
		}(i)
	}
	return wg.Wait
}

// accessBatch serves one routed batch entirely within shard idx under a
// single lock acquisition — the batched counterpart of Access. Every
// item in b must hash to shard idx.
func (s *Sharded) accessBatch(idx int, b []model.Item) {
	sh := &s.shards[idx]
	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		sh.mu.Lock()
	}
	sh.acquired.Add(1)
	for _, it := range b {
		a := sh.c.Access(it)
		sh.rec.Observe(it, a)
	}
	sh.mu.Unlock()
}

// router accumulates one producer's pending batches, one per queue, and
// enqueues them as they fill. Each producer owns a router — pending
// buffers are not shared.
type router struct {
	e       *batchEngine
	pending [][]model.Item
}

func (e *batchEngine) newRouter() *router {
	return &router{e: e, pending: make([][]model.Item, len(e.queues))}
}

// route buffers one request toward its queue, enqueueing the batch when
// full. It returns ctx's error when cancellation interrupted the
// enqueue (the engine's backpressure point, hence the only place a
// producer can block).
func (r *router) route(ctx context.Context, it model.Item) error {
	idx := 0
	if !r.e.cfg.Deterministic {
		idx = r.e.s.shardIndex(it)
	}
	b := r.pending[idx]
	if b == nil {
		b = r.e.getBatch()
	}
	b = append(b, it)
	if len(b) < r.e.cfg.BatchSize {
		r.pending[idx] = b
		return nil
	}
	r.pending[idx] = nil
	return r.send(ctx, idx, b)
}

// flush enqueues every non-empty pending batch.
func (r *router) flush(ctx context.Context) error {
	for idx, b := range r.pending {
		if len(b) == 0 {
			continue
		}
		r.pending[idx] = nil
		if err := r.send(ctx, idx, b); err != nil {
			return err
		}
	}
	return nil
}

func (r *router) send(ctx context.Context, idx int, b []model.Item) error {
	// Poll before enqueueing, not only while blocked: after cancellation
	// the workers drain queues without processing, so a send would often
	// succeed and the producer would never notice the replay is dead.
	if err := ctx.Err(); err != nil {
		r.e.putBatch(b)
		return err
	}
	select {
	case r.e.queues[idx] <- b:
		return nil
	case <-ctx.Done():
		r.e.putBatch(b)
		return ctx.Err()
	}
}

// closeQueues ends the stream side; workers drain and exit.
func (e *batchEngine) closeQueues() {
	for _, q := range e.queues {
		close(q)
	}
}

// ReplayCtx replays streams through s on the batched engine and returns
// the merged statistics (cumulative for s, like Replay). One producer
// goroutine per non-empty stream routes requests into the per-shard
// queues; in deterministic mode a single producer merges the streams
// round-robin instead. The error is nil when every request was
// replayed and ctx's error when cancellation cut the replay short; the
// statistics then cover exactly the batches workers had claimed.
func ReplayCtx(ctx context.Context, s *Sharded, streams []trace.Trace, cfg BatchConfig) (cachesim.Stats, error) {
	cfg = cfg.withDefaults()
	e := newBatchEngine(s, cfg)
	wait := e.startWorkers(ctx)

	var firstErr error
	if cfg.Deterministic {
		firstErr = e.produceMerged(ctx, streams)
	} else {
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			fail = func(err error) {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		)
		for _, st := range streams {
			if len(st) == 0 {
				continue
			}
			wg.Add(1)
			go func(tr trace.Trace) {
				defer wg.Done()
				r := e.newRouter()
				for _, it := range tr {
					if err := r.route(ctx, it); err != nil {
						fail(err)
						return
					}
				}
				if err := r.flush(ctx); err != nil {
					fail(err)
				}
			}(st)
		}
		wg.Wait()
	}
	e.closeQueues()
	wait()
	return s.Stats(), firstErr
}

// produceMerged is the deterministic producer: one goroutine-free pass
// merging streams round-robin, one request at a time, into the single
// queue.
func (e *batchEngine) produceMerged(ctx context.Context, streams []trace.Trace) error {
	r := e.newRouter()
	remaining := len(streams)
	for pos := 0; remaining > 0; pos++ {
		remaining = 0
		for _, st := range streams {
			if pos < len(st) {
				remaining++
				if err := r.route(ctx, st[pos]); err != nil {
					return err
				}
			}
		}
	}
	return r.flush(ctx)
}

// ReplayStreamCtx replays a single incremental trace.Source through s
// on the batched engine — the O(1)-memory serving path: requests go
// straight from the decoder into bounded shard queues, so a trace
// larger than memory streams through without ever materializing.
// Cancellation semantics match ReplayCtx; a source decode error is
// returned after the requests before it have been replayed.
func ReplayStreamCtx(ctx context.Context, s *Sharded, src trace.Source, cfg BatchConfig) (cachesim.Stats, error) {
	cfg = cfg.withDefaults()
	e := newBatchEngine(s, cfg)
	wait := e.startWorkers(ctx)

	var firstErr error
	r := e.newRouter()
	for src.Next() {
		if err := r.route(ctx, src.Item()); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		if err := r.flush(ctx); err != nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		if err := src.Err(); err != nil {
			firstErr = fmt.Errorf("concurrent: replay source: %w", err)
		}
	}
	e.closeQueues()
	wait()
	return s.Stats(), firstErr
}
