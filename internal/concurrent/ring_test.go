package concurrent

import (
	"context"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/trace"
)

// --- SPSC ring primitive ---

// TestRingWraparound pushes and pops across many multiples of the
// capacity so the monotonic head/tail indices exercise the mask-based
// wrap, including a non-power-of-two requested capacity.
func TestRingWraparound(t *testing.T) {
	for _, capacity := range []int{1, 2, 5, 8} {
		var r batchRing
		r.init(capacity)
		if n := len(r.slots); n&(n-1) != 0 || n < capacity {
			t.Fatalf("init(%d): %d slots, want power of two >= capacity", capacity, n)
		}
		next := uint64(0) // next value expected out
		sent := uint64(0)
		for round := 0; round < 6*len(r.slots)+3; round++ {
			// Fill completely, then drain completely, shifting phase by
			// one each round so every slot sees every head/tail offset.
			for r.push([]model.Item{model.Item(sent)}) {
				sent++
			}
			for {
				b, ok := r.pop()
				if !ok {
					break
				}
				if len(b) != 1 || b[0] != model.Item(next) {
					t.Fatalf("capacity %d: popped %v, want [%d]", capacity, b, next)
				}
				next++
			}
			if next != sent {
				t.Fatalf("capacity %d: drained %d, pushed %d", capacity, next, sent)
			}
			// Re-seed one element so the next round starts offset by one.
			if r.push([]model.Item{model.Item(sent)}) {
				sent++
			}
		}
	}
}

// TestRingFullBackpressure pins the full/empty boundary conditions:
// exactly cap pushes succeed, the cap+1st fails, and one pop reopens
// exactly one slot.
func TestRingFullBackpressure(t *testing.T) {
	var r batchRing
	r.init(4)
	if !r.empty() {
		t.Fatal("fresh ring not empty")
	}
	for i := 0; i < 4; i++ {
		if !r.push([]model.Item{model.Item(i)}) {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	if r.push([]model.Item{99}) {
		t.Fatal("push succeeded on a full ring")
	}
	if b, ok := r.pop(); !ok || b[0] != 0 {
		t.Fatalf("pop = %v, %v; want [0], true", b, ok)
	}
	if !r.push([]model.Item{4}) {
		t.Fatal("push refused after a pop freed a slot")
	}
	if r.push([]model.Item{99}) {
		t.Fatal("second push succeeded with only one slot freed")
	}
	for want := 1; want <= 4; want++ {
		b, ok := r.pop()
		if !ok || b[0] != model.Item(want) {
			t.Fatalf("pop = %v, %v; want [%d], true (FIFO order)", b, ok, want)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop succeeded on an empty ring")
	}
	if !r.empty() {
		t.Fatal("drained ring not empty")
	}
}

// TestRingConcurrentSPSC runs one pusher against one popper under the
// race detector: every batch must arrive exactly once, in order, with
// its contents visible (the release/acquire hand-off).
func TestRingConcurrentSPSC(t *testing.T) {
	var r batchRing
	r.init(4)
	const n = 20000
	done := make(chan error, 1)
	go func() {
		var w spinWait
		for i := uint64(0); i < n; {
			if r.push([]model.Item{model.Item(i), model.Item(i * 2)}) {
				i++
				w.reset()
				continue
			}
			w.wait()
		}
		done <- nil
	}()
	var w spinWait
	for i := uint64(0); i < n; {
		b, ok := r.pop()
		if !ok {
			w.wait()
			continue
		}
		if len(b) != 2 || b[0] != model.Item(i) || b[1] != model.Item(i*2) {
			t.Fatalf("batch %d: got %v", i, b)
		}
		i++
		w.reset()
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !r.empty() {
		t.Fatal("ring not empty after all batches consumed")
	}
}

// --- persistent Engine ---

// TestEngineReuseAcrossReplays checks the persistent engine's whole
// point: many replays over one engine, with exact accounting each time
// and no cross-replay leakage of counters.
func TestEngineReuseAcrossReplays(t *testing.T) {
	s := newIBLPSharded(t, 8, 1024, 16)
	tr := batchFixture(t, "blockruns:blocks=256,B=16,run=8,len=40000", 21)
	streams := SplitStreams(tr, 8)
	e, err := NewEngine(s, len(streams), BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for round := 1; round <= 5; round++ {
		st, err := e.Replay(context.Background(), streams)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if st.Accesses != int64(round*len(tr)) {
			t.Fatalf("round %d: accesses %d, want %d", round, st.Accesses, round*len(tr))
		}
		if st.Hits+st.Misses != st.Accesses {
			t.Fatalf("round %d: inconsistent stats %+v", round, st)
		}
	}
}

// TestEngineDeterministicReuse replays the same streams repeatedly on
// one deterministic engine with a Reset between rounds: every round
// must reproduce the sequential replay byte for byte.
func TestEngineDeterministicReuse(t *testing.T) {
	tr := batchFixture(t, "blockruns:blocks=128,B=8,run=4,len=30000", 23)

	seq := newIBLPSharded(t, 4, 512, 8)
	for _, it := range tr {
		seq.Access(it)
	}
	want := seq.Stats()

	s := newIBLPSharded(t, 4, 512, 8)
	streams := SplitStreams(tr, 5)
	e, err := NewEngine(s, len(streams), BatchConfig{Deterministic: true, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for round := 0; round < 3; round++ {
		s.Reset()
		got, err := e.Replay(context.Background(), streams)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round %d: deterministic replay diverged:\n  got:  %+v\n  want: %+v", round, got, want)
		}
	}
}

// TestEngineCancelThenReuse cancels a replay on a persistent engine
// with the tiniest possible rings — producers blocked on full rings
// while the context dies — and then runs a clean replay on the same
// engine. Cancellation must neither wedge the engine nor corrupt the
// next replay's accounting, and Close must return with rings fully
// drained.
func TestEngineCancelThenReuse(t *testing.T) {
	s := newIBLPSharded(t, 4, 512, 8)
	tr := batchFixture(t, "blockruns:blocks=256,B=8,run=4,len=200000", 27)
	streams := SplitStreams(tr, 4)
	e, err := NewEngine(s, len(streams), BatchConfig{BatchSize: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead on arrival: every producer sees a full-or-cancelled world
	st, err := e.Replay(ctx, streams)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("partial stats inconsistent: %+v", st)
	}
	replayed := st.Accesses

	got, err := e.Replay(context.Background(), streams)
	if err != nil {
		t.Fatalf("clean replay after cancellation: %v", err)
	}
	if got.Accesses != replayed+int64(len(tr)) {
		t.Fatalf("accesses %d after reuse, want %d", got.Accesses, replayed+int64(len(tr)))
	}
	for p := range e.lanes {
		for w := range e.lanes[p] {
			if !e.lanes[p][w].data.empty() {
				t.Fatalf("lane [%d][%d] not drained after replays", p, w)
			}
		}
	}
}

// TestEnginePinWorkers runs the pinned-worker mode end to end; the
// result must be indistinguishable from the unpinned engine.
func TestEnginePinWorkers(t *testing.T) {
	s := newIBLPSharded(t, 4, 512, 8)
	tr := batchFixture(t, "blockruns:blocks=128,B=8,run=4,len=30000", 29)
	st, err := ReplayCtx(context.Background(), s, SplitStreams(tr, 4),
		BatchConfig{PinWorkers: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != int64(len(tr)) {
		t.Fatalf("accesses %d != %d", st.Accesses, len(tr))
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("inconsistent stats %+v", st)
	}
}

// TestEngineMisuse pins the guard rails: replay on a closed engine,
// overlapping replays, and bad construction arguments all error
// instead of corrupting state.
func TestEngineMisuse(t *testing.T) {
	s := newIBLPSharded(t, 2, 256, 8)
	if _, err := NewEngine(nil, 1, BatchConfig{}); err == nil {
		t.Error("NewEngine(nil, ...) succeeded")
	}
	if _, err := NewEngine(s, 0, BatchConfig{}); err == nil {
		t.Error("NewEngine(s, 0, ...) succeeded")
	}
	e, err := NewEngine(s, 1, BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // second Close is a no-op
	if _, err := e.Replay(context.Background(), nil); err == nil {
		t.Error("Replay on a closed engine succeeded")
	}
}

// cancelAfterSource emits sequential items and cancels a context after
// the k-th emission — a deterministic way to land a cancellation at an
// exact point in the produce/route/consume interleaving.
type cancelAfterSource struct {
	n, emitted int
	cancelAt   int
	cancel     context.CancelFunc
	universe   int
	cur        model.Item
}

func (c *cancelAfterSource) Next() bool {
	if c.emitted >= c.n {
		return false
	}
	c.cur = model.Item(c.emitted % c.universe)
	c.emitted++
	if c.emitted == c.cancelAt && c.cancel != nil {
		c.cancel()
	}
	return true
}

func (c *cancelAfterSource) Item() model.Item { return c.cur }
func (c *cancelAfterSource) Err() error       { return nil }

// FuzzReplayInterleaved fuzzes the engine over interleaved
// produce/consume/cancel sequences: trace length, batch size, queue
// depth, shard count, and the exact request after which the context is
// cancelled are all fuzzed, and the engine must preserve its two
// invariants — err == nil iff every request was replayed, and the
// statistics internally consistent either way. Run it under -race for
// the interleaving coverage the seed corpus alone cannot give.
func FuzzReplayInterleaved(f *testing.F) {
	f.Add(uint16(1000), uint8(4), uint8(1), uint8(2), uint16(500))
	f.Add(uint16(5000), uint8(1), uint8(1), uint8(1), uint16(0))
	f.Add(uint16(3000), uint8(64), uint8(4), uint8(8), uint16(2999))
	f.Add(uint16(256), uint8(255), uint8(8), uint8(4), uint16(1))
	f.Fuzz(func(t *testing.T, n uint16, batch, depth, shardsRaw uint8, cancelAt uint16) {
		shards := 1 << (shardsRaw % 4) // 1, 2, 4, 8
		geo := model.NewFixed(8)
		s, err := NewSharded(shards, 64*shards, geo, func(per int) cachesim.Cache {
			return core.NewIBLPEvenSplit(per, geo)
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		src := &cancelAfterSource{
			n:        int(n),
			cancelAt: int(cancelAt),
			universe: 4096,
		}
		if cancelAt > 0 && int(cancelAt) <= int(n) {
			src.cancel = cancel
		}
		st, err := ReplayStreamCtx(ctx, s, src,
			BatchConfig{BatchSize: int(batch), QueueDepth: int(depth)})
		if st.Hits+st.Misses != st.Accesses {
			t.Fatalf("inconsistent stats: %+v", st)
		}
		if st.SpatialHits+st.TemporalHits != st.Hits {
			t.Fatalf("inconsistent hit split: %+v", st)
		}
		if err == nil && st.Accesses != int64(src.emitted) {
			t.Fatalf("err == nil but %d/%d requests replayed", st.Accesses, src.emitted)
		}
		if st.Accesses > int64(src.emitted) {
			t.Fatalf("replayed %d > emitted %d", st.Accesses, src.emitted)
		}
	})
}

// TestReplayEngineZeroAllocSteadyState proves the acceptance criterion
// directly: a warm engine over a fully bounded (dense) sharded cache
// replays with zero allocations per run.
func TestReplayEngineZeroAllocSteadyState(t *testing.T) {
	geo := model.NewFixed(16)
	tr := batchFixture(t, "blockruns:blocks=256,B=16,run=8,len=20000", 31)
	u := model.ItemUniverse(geo, tr.Universe())
	s, err := NewShardedBounded(8, 1024, geo, u, func(per int) cachesim.Cache {
		return core.NewIBLPEvenSplitBounded(per, geo, u)
	})
	if err != nil {
		t.Fatal(err)
	}
	streams := SplitStreams(tr, 8)
	e, err := NewEngine(s, len(streams), BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	// Warm up: populate the free rings and any lazily sized stats scratch.
	if _, err := e.Replay(ctx, streams); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := e.Replay(ctx, streams); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm Engine.Replay allocates %.1f times per replay, want 0", allocs)
	}
}

// --- per-stage benchmarks: ring-only, routing-only, end-to-end ---

// BenchmarkRingPushPop isolates the SPSC primitive: one push + one pop
// per iteration on a single goroutine (no contention, no policy work).
func BenchmarkRingPushPop(b *testing.B) {
	var r batchRing
	r.init(4)
	batch := make([]model.Item, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.push(batch)
		r.pop()
	}
}

// nopCache is a policy-free cachesim.Cache: every access is a miss with
// no loads and no evictions, so an engine over it measures pure serving
// overhead (routing, rings, locks) with the policy cost subtracted.
type nopCache struct{}

func (nopCache) Name() string                      { return "nop" }
func (nopCache) Access(model.Item) cachesim.Access { return cachesim.Access{} }
func (nopCache) Contains(model.Item) bool          { return false }
func (nopCache) Len() int                          { return 0 }
func (nopCache) Capacity() int                     { return 1 }
func (nopCache) Reset()                            {}

// BenchmarkRouteOnly measures the routing stage: counting-sort
// partition plus ring traffic into workers serving a no-op policy. The
// gap to BenchmarkEngineReplay is the policy cost; the gap from
// BenchmarkRingPushPop is the partition + scheduling cost.
func BenchmarkRouteOnly(b *testing.B) {
	geo := model.NewFixed(16)
	s, err := NewSharded(8, 1024, geo, func(int) cachesim.Cache { return nopCache{} })
	if err != nil {
		b.Fatal(err)
	}
	tr := batchFixture(b, "blockruns:blocks=256,B=16,run=8,len=65536", 3)
	streams := SplitStreams(tr, 8)
	e, err := NewEngine(s, len(streams), BatchConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	if _, err := e.Replay(ctx, streams); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Replay(ctx, streams); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr))*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

// BenchmarkEngineReplay is the end-to-end stage: a warm persistent
// engine serving the dense (bounded) IBLP policy — the in-package
// counterpart of the root BenchmarkReplayThroughput.
func BenchmarkEngineReplay(b *testing.B) {
	geo := model.NewFixed(16)
	tr := batchFixture(b, "blockruns:blocks=256,B=16,run=8,len=65536", 3)
	u := model.ItemUniverse(geo, tr.Universe())
	s, err := NewShardedBounded(8, 1024, geo, u, func(per int) cachesim.Cache {
		return core.NewIBLPEvenSplitBounded(per, geo, u)
	})
	if err != nil {
		b.Fatal(err)
	}
	streams := SplitStreams(tr, 8)
	e, err := NewEngine(s, len(streams), BatchConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	if _, err := e.Replay(ctx, streams); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Replay(ctx, streams); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr))*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

var _ trace.Source = (*cancelAfterSource)(nil)
