// Package concurrent provides a thread-safe, sharded GC cache for
// parallel trace replay. Real deployments of the paper's setting (shared
// DRAM caches, storage-server buffer pools) serve many request streams
// at once; Sharded partitions the item universe by *block* across
// independently locked policy instances, so every unit-cost block load —
// the operation the GC model prices — stays entirely within one shard
// and needs exactly one lock acquisition.
package concurrent

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/obs"
	"gccache/internal/trace"
)

// Sharded is a lock-striped cache composed of per-shard policy
// instances. It implements cachesim.Cache, so it can also be driven
// single-threaded, validated, and compared against its flat equivalent.
type Sharded struct {
	geo    model.Geometry
	shards []shard
	mask   uint64
	probe  obs.Probe
	name   string
	// universe selects bounded (flat-bitset, zero-allocation) recorders
	// when positive; see NewShardedBounded.
	universe int
}

type shard struct {
	mu sync.Mutex
	//gclint:guardedby mu
	c cachesim.Cache
	//gclint:guardedby mu
	rec *cachesim.Recorder
	// Lock-contention counters (atomics, not extra locks): acquired is
	// every Access lock acquisition; contended counts the ones where the
	// lock was already held and the caller had to wait.
	acquired  atomic.Int64
	contended atomic.Int64
	// pad keeps shard headers off shared cache lines under contention.
	_ [64]byte
}

// NewSharded builds a sharded cache with nShards power-of-two shards;
// build constructs each shard's policy with its share of the total
// capacity. The geometry must match the one the shard policies use.
func NewSharded(nShards, totalCapacity int, geo model.Geometry,
	build func(shardCapacity int) cachesim.Cache) (*Sharded, error) {
	return NewShardedBounded(nShards, totalCapacity, geo, 0, build)
}

// NewShardedBounded is NewSharded for a bounded item universe: every
// shard's recorder uses the flat-bitset (zero-allocation) pristineness
// tracker over item IDs [0, universe), the dense counterpart the
// *Bounded policy constructors pair with. A non-positive universe falls
// back to the generic map recorders.
func NewShardedBounded(nShards, totalCapacity int, geo model.Geometry, universe int,
	build func(shardCapacity int) cachesim.Cache) (*Sharded, error) {
	if nShards < 1 || nShards&(nShards-1) != 0 {
		return nil, fmt.Errorf("concurrent: shard count %d is not a positive power of two", nShards)
	}
	if totalCapacity < nShards {
		return nil, fmt.Errorf("concurrent: capacity %d below one item per shard (%d)", totalCapacity, nShards)
	}
	if geo == nil {
		return nil, fmt.Errorf("concurrent: nil geometry")
	}
	s := &Sharded{geo: geo, shards: make([]shard, nShards), mask: uint64(nShards - 1), universe: universe}
	per := totalCapacity / nShards
	for i := range s.shards {
		c := build(per)
		if c == nil {
			return nil, fmt.Errorf("concurrent: builder returned nil for shard %d", i)
		}
		s.shards[i].c = c
		s.shards[i].rec = s.newRecorder(c.Name())
	}
	s.name = fmt.Sprintf("sharded(%d×%s)", len(s.shards), s.shards[0].c.Name())
	return s, nil
}

// newRecorder builds one shard's recorder, bounded when the universe is.
func (s *Sharded) newRecorder(policy string) *cachesim.Recorder {
	if s.universe > 0 {
		return cachesim.NewRecorderBounded(policy, s.universe)
	}
	return cachesim.NewRecorder(policy)
}

// shardIndex hashes the item's *block* so all siblings share a shard.
//
//gclint:hotpath
func (s *Sharded) shardIndex(it model.Item) int {
	b := uint64(s.geo.BlockOf(it))
	// splitmix64-style finalizer for uniform shard selection.
	b ^= b >> 30
	b *= 0xbf58476d1ce4e5b9
	b ^= b >> 27
	b *= 0x94d049bb133111eb
	b ^= b >> 31
	return int(b & s.mask)
}

func (s *Sharded) shardOf(it model.Item) *shard {
	return &s.shards[s.shardIndex(it)]
}

// Name implements cachesim.Cache. The name is computed once at
// construction so Stats (which stamps it on every merge) stays off the
// allocator.
func (s *Sharded) Name() string { return s.name }

// Access implements cachesim.Cache; it is safe for concurrent use.
func (s *Sharded) Access(it model.Item) cachesim.Access {
	sh := s.shardOf(it)
	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		sh.mu.Lock()
	}
	sh.acquired.Add(1)
	a := sh.c.Access(it)
	sh.rec.Observe(it, a)
	sh.mu.Unlock()
	return a
}

// Contains implements cachesim.Cache.
func (s *Sharded) Contains(it model.Item) bool {
	sh := s.shardOf(it)
	sh.mu.Lock()
	ok := sh.c.Contains(it)
	sh.mu.Unlock()
	return ok
}

// Len implements cachesim.Cache (sums shard contents; the value is a
// snapshot, exact only when quiescent).
func (s *Sharded) Len() int {
	total := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		total += s.shards[i].c.Len()
		s.shards[i].mu.Unlock()
	}
	return total
}

// Capacity implements cachesim.Cache. Shard capacities never change
// after construction, but the policy pointer itself is guarded, so take
// the lock like Len does — Capacity is nowhere near a hot path.
func (s *Sharded) Capacity() int {
	total := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		total += s.shards[i].c.Capacity()
		s.shards[i].mu.Unlock()
	}
	return total
}

// Reset implements cachesim.Cache. An attached probe survives the
// reset; the contention counters restart at zero.
func (s *Sharded) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.c.Reset()
		sh.rec.Reset(sh.c.Name())
		sh.acquired.Store(0)
		sh.contended.Store(0)
		sh.mu.Unlock()
	}
}

// SetProbe implements cachesim.Instrumented, fanning the probe out to
// every shard's policy (when instrumented) and recorder. The probe must
// be safe for concurrent use — shards call it in parallel (every probe
// in internal/obs is; a Suite can be shared across all shards).
func (s *Sharded) SetProbe(p obs.Probe) {
	s.probe = p
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if in, ok := sh.c.(cachesim.Instrumented); ok {
			in.SetProbe(p)
		}
		sh.rec.SetProbe(p)
		sh.mu.Unlock()
	}
}

// WithShardCache runs f on shard i's cache under that shard's Access
// mutex. It is the control-plane entry point for mutations that must
// not race Access — cachesim.LayerResizable's contract, which the
// autotune controller relies on when applying a layer resize to a
// single-shard load run. f must not call back into s.
func (s *Sharded) WithShardCache(i int, f func(cachesim.Cache)) {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f(sh.c)
}

// ShardLoad is one shard's lock-traffic snapshot.
type ShardLoad struct {
	Acquired  int64 // Access lock acquisitions
	Contended int64 // acquisitions that found the lock held
}

// ShardLoads returns per-shard lock-contention counters (a snapshot;
// exact only when quiescent). The contended/acquired ratio is the
// direct measure of whether the shard count fits the offered
// concurrency.
func (s *Sharded) ShardLoads() []ShardLoad {
	out := make([]ShardLoad, len(s.shards))
	for i := range s.shards {
		out[i] = ShardLoad{
			Acquired:  s.shards[i].acquired.Load(),
			Contended: s.shards[i].contended.Load(),
		}
	}
	return out
}

// Stats merges the per-shard statistics (quiescent snapshot).
func (s *Sharded) Stats() cachesim.Stats {
	out := cachesim.Stats{Policy: s.Name()}
	for i := range s.shards {
		s.shards[i].mu.Lock()
		out.Add(s.shards[i].rec.Stats())
		s.shards[i].mu.Unlock()
	}
	return out
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Replay drives the sharded cache with one goroutine per non-empty
// stream and returns the merged statistics. Streams interleave
// nondeterministically, as real concurrent clients would. For batched
// queues, backpressure, and cancellation, see ReplayCtx.
func Replay(s *Sharded, streams []trace.Trace) cachesim.Stats {
	var wg sync.WaitGroup
	for _, st := range streams {
		if len(st) == 0 {
			continue
		}
		wg.Add(1)
		go func(tr trace.Trace) {
			defer wg.Done()
			for _, it := range tr {
				s.Access(it)
			}
		}(st)
	}
	wg.Wait()
	return s.Stats()
}

// SplitStreams deals a trace round-robin into n request streams —
// a simple way to turn a single-client trace into a concurrent workload
// while preserving each item's overall frequency. n is clamped to the
// trace length (and to at least 1), so no returned stream is ever empty
// and replay engines never spawn goroutines with nothing to do.
func SplitStreams(tr trace.Trace, n int) []trace.Trace {
	if n > len(tr) {
		n = len(tr)
	}
	if n < 1 {
		n = 1
	}
	out := make([]trace.Trace, n)
	for i, it := range tr {
		out[i%n] = append(out[i%n], it)
	}
	return out
}
