package concurrent

// This file holds the lock-free building blocks of the batched serving
// engine: a fixed-capacity single-producer/single-consumer ring of
// request batches, and the hybrid spin/park strategy its goroutines use
// when idle.
//
// Why SPSC is safe here: the engine gives every (producer, shard) pair
// its own private ring pair (see lane in batch.go), so each ring has
// exactly one goroutine that ever pushes and exactly one that ever
// pops. Under that ownership discipline a ring needs no lock and no
// compare-and-swap: the producer owns tail (it is the only writer), the
// consumer owns head, and each side reads the other's index with a
// plain atomic load. The slot write happens before the tail store and
// the tail load happens before the slot read (Go atomics are
// sequentially consistent), so a consumer that observes tail > head
// also observes the slot contents — the textbook release/acquire
// hand-off. Ownership hand-off between successive replays (e.g. a
// producer goroutine in one Replay, the caller in the next ReplayStream)
// is sequenced through the engine's done/popped counters, which are
// themselves atomics, so the chain of happens-before edges never
// breaks.

import (
	"runtime"
	"sync/atomic"
	"time"

	"gccache/internal/model"
)

// batchRing is a fixed-capacity SPSC ring of request batches. The
// capacity is rounded up to a power of two so positions wrap with a
// mask instead of a division; head and tail are monotonically
// increasing uint64s (never reduced modulo the capacity), which makes
// full (tail-head == cap) and empty (tail == head) tests trivial and
// immune to the classic one-slot-wasted ambiguity.
//
// head and tail live on their own cache lines: the producer writes tail
// on every push and the consumer writes head on every pop, so sharing a
// line would bounce it between the two cores on every operation — the
// false sharing this engine exists to kill. gclint's atomicfield
// analyzer checks the layout from the directive below: every atomic
// field must sit on a cache line no plain field shares.
//
//gclint:padded
type batchRing struct {
	slots [][]model.Item // len(slots) is a power of two
	mask  uint64
	_     [64 - 32]byte // keep the read-only header off head's line
	head  atomic.Uint64 // next slot to pop; written only by the consumer
	_     [64 - 8]byte  // head and tail on separate lines
	tail  atomic.Uint64 // next slot to push; written only by the producer
	_     [64 - 8]byte  // keep tail off the next ring's line
}

// init sizes the ring for at least capacity batches.
func (r *batchRing) init(capacity int) {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r.slots = make([][]model.Item, n)
	r.mask = uint64(n - 1)
}

// push enqueues one batch. It returns false when the ring is full; the
// producer decides how to wait. Must only be called by the ring's
// single producer.
//
//gclint:hotpath
func (r *batchRing) push(b []model.Item) bool {
	t := r.tail.Load()
	if t-r.head.Load() > r.mask {
		return false
	}
	r.slots[t&r.mask] = b
	r.tail.Store(t + 1)
	return true
}

// pop dequeues one batch, or returns false when the ring is empty. Must
// only be called by the ring's single consumer.
//
//gclint:hotpath
func (r *batchRing) pop() ([]model.Item, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil, false
	}
	b := r.slots[h&r.mask]
	r.head.Store(h + 1)
	return b, true
}

// empty reports whether the ring currently holds no batches. Like every
// concurrent snapshot it is exact only when the producer is quiescent.
//
//gclint:hotpath
func (r *batchRing) empty() bool {
	return r.head.Load() == r.tail.Load()
}

// Idle strategy: spin (yielding to the scheduler) for a while, then
// park in escalating sleeps. The spin phase keeps wake-up latency at
// scheduler-quantum scale while a replay is flowing — crucial on
// GOMAXPROCS=1, where a non-yielding spin would starve the very
// goroutine being waited for — and the park phase keeps long-idle
// persistent workers from burning a core between replays.
const (
	idleSpins = 128
	minPark   = 20 * time.Microsecond
	maxPark   = 500 * time.Microsecond
)

type spinWait struct {
	spins int
}

func (w *spinWait) reset() { w.spins = 0 }

// wait blocks the caller briefly; callers re-check their condition
// after every return. Escalation doubles the park from minPark to
// maxPark so a freshly idle goroutine stays responsive.
func (w *spinWait) wait() {
	w.spins++
	if w.spins <= idleSpins {
		runtime.Gosched()
		return
	}
	e := w.spins - idleSpins
	if e > 5 {
		e = 5
	}
	d := minPark << uint(e-1)
	if d > maxPark {
		d = maxPark
	}
	time.Sleep(d)
}
