// Package model defines the basic vocabulary of the Granularity-Change
// (GC) Caching Problem: items, blocks, and the geometry that partitions
// the item universe into blocks of at most B items.
//
// In the GC Caching Problem (Beckmann, Gibbons, McGuffey; SPAA 2022) a
// cache of size k serves requests to unit-size items. Items are grouped
// into disjoint blocks of at most B items, and on a miss the cache may
// load any subset of the missed item's block — so long as it contains the
// item — for a single unit of cost. Items are individually cacheable and
// evictable; only the *load* happens at block granularity.
package model

import "fmt"

// Item identifies a unit-size cacheable datum. The item universe is the
// non-negative integers; adversaries allocate fresh items without bound.
type Item uint64

// Block identifies a block: a set of at most B items that can be loaded
// together for unit cost.
type Block uint64

// Geometry describes the partition of items into blocks. Implementations
// must be consistent: ItemsOf(BlockOf(it)) contains it, all blocks are
// disjoint, and no block exceeds BlockSize items.
type Geometry interface {
	// BlockOf returns the block containing it.
	BlockOf(it Item) Block
	// ItemsOf returns the items of block b in a stable order. The
	// returned slice is valid only until the next ItemsOf call on the
	// same geometry and must not be mutated; implementations may reuse
	// an internal scratch buffer, so ItemsOf is not safe for concurrent
	// use. Callers that retain the items, nest ItemsOf calls, or share
	// a geometry across goroutines must copy (see AppendItemsOf).
	ItemsOf(b Block) []Item
	// BlockSize returns B, the maximum number of items in any block.
	BlockSize() int
}

// ItemsAppender is implemented by geometries that can write a block's
// item set into a caller-owned buffer. Unlike ItemsOf, AppendItems
// touches no shared scratch state, so it is safe for concurrent use and
// for nested enumeration; it is the form every hot-path policy uses.
type ItemsAppender interface {
	// AppendItems appends the items of block b to dst and returns the
	// extended slice, in the same stable order ItemsOf would produce.
	AppendItems(dst []Item, b Block) []Item
}

// AppendItemsOf appends the items of block b under g to dst, using the
// geometry's AppendItems fast path when available and falling back to
// copying the ItemsOf result otherwise. The result aliases only dst, so
// it is safe to retain.
func AppendItemsOf(g Geometry, dst []Item, b Block) []Item {
	if a, ok := g.(ItemsAppender); ok {
		return a.AppendItems(dst, b)
	}
	return append(dst, g.ItemsOf(b)...)
}

// Fixed is the canonical geometry: item i belongs to block i/B, and block
// b holds items [b*B, (b+1)*B). Every block is full. This is the geometry
// of a memory address space split into aligned lines.
type Fixed struct {
	b       int
	scratch []Item // reused by ItemsOf; valid until its next call
}

// NewFixed returns the aligned geometry with block size b.
// It panics if b < 1.
func NewFixed(b int) *Fixed {
	if b < 1 {
		panic(fmt.Sprintf("model: block size %d < 1", b))
	}
	return &Fixed{b: b}
}

// BlockOf returns it / B.
func (g *Fixed) BlockOf(it Item) Block { return Block(uint64(it) / uint64(g.b)) }

// ItemsOf returns the B items [b*B, (b+1)*B) in an internal scratch
// buffer that is overwritten by the next ItemsOf call on g. Callers must
// not mutate or retain the slice (copy via AppendItems to retain), and
// must not share g across goroutines that call ItemsOf concurrently.
func (g *Fixed) ItemsOf(b Block) []Item {
	g.scratch = g.AppendItems(g.scratch[:0], b)
	return g.scratch
}

// AppendItems appends the B items [b*B, (b+1)*B) to dst. It touches no
// shared state and is safe for concurrent use.
func (g *Fixed) AppendItems(dst []Item, b Block) []Item {
	base := uint64(b) * uint64(g.b)
	for i := 0; i < g.b; i++ {
		dst = append(dst, Item(base+uint64(i)))
	}
	return dst
}

// BlockSize returns B.
func (g *Fixed) BlockSize() int { return g.b }

// IndexInBlock returns the offset of it within its block.
func (g *Fixed) IndexInBlock(it Item) int { return int(uint64(it) % uint64(g.b)) }

// Table is an explicit geometry built from a list of blocks with possibly
// different (≤ B) sizes. It is used by the variable-size-caching reduction
// (Theorem 1), where only the "active set" of each block is ever touched.
type Table struct {
	blockOf map[Item]Block
	itemsOf map[Block][]Item
	maxSize int
	pseudo  [1]Item // scratch for pseudo-block ItemsOf
}

// NewTable builds a geometry from explicit blocks. Block IDs are assigned
// in slice order. It returns an error if any item appears twice or any
// block is empty.
func NewTable(blocks [][]Item) (*Table, error) {
	t := &Table{
		blockOf: make(map[Item]Block),
		itemsOf: make(map[Block][]Item),
	}
	for i, blk := range blocks {
		if len(blk) == 0 {
			return nil, fmt.Errorf("model: block %d is empty", i)
		}
		id := Block(i)
		for _, it := range blk {
			if _, dup := t.blockOf[it]; dup {
				return nil, fmt.Errorf("model: item %d in multiple blocks", it)
			}
			t.blockOf[it] = id
		}
		items := make([]Item, len(blk))
		copy(items, blk)
		t.itemsOf[id] = items
		if len(blk) > t.maxSize {
			t.maxSize = len(blk)
		}
	}
	return t, nil
}

// MustTable is NewTable that panics on error; for tests and literals.
func MustTable(blocks [][]Item) *Table {
	t, err := NewTable(blocks)
	if err != nil {
		panic(err)
	}
	return t
}

// BlockOf returns the block of it. Items not in any declared block are
// placed in a singleton pseudo-block derived from the item ID, offset past
// the declared ID range, so the geometry remains total.
func (t *Table) BlockOf(it Item) Block {
	if b, ok := t.blockOf[it]; ok {
		return b
	}
	return Block(uint64(len(t.itemsOf)) + uint64(it))
}

// ItemsOf returns the items of b; for pseudo-blocks it returns the single
// implied item. Per the Geometry contract the slice is valid only until
// the next ItemsOf call and must not be mutated. (Declared blocks are in
// fact returned from stable storage, but callers should not rely on a
// guarantee stronger than the interface's.)
func (t *Table) ItemsOf(b Block) []Item {
	if items, ok := t.itemsOf[b]; ok {
		return items
	}
	t.pseudo[0] = Item(uint64(b) - uint64(len(t.itemsOf)))
	return t.pseudo[:]
}

// AppendItems appends the items of b to dst. It touches no shared
// mutable state and is safe for concurrent use.
func (t *Table) AppendItems(dst []Item, b Block) []Item {
	if items, ok := t.itemsOf[b]; ok {
		return append(dst, items...)
	}
	return append(dst, Item(uint64(b)-uint64(len(t.itemsOf))))
}

// BlockSize returns the maximum declared block size (at least 1).
func (t *Table) BlockSize() int {
	if t.maxSize < 1 {
		return 1
	}
	return t.maxSize
}

// NumBlocks returns the number of declared blocks.
func (t *Table) NumBlocks() int { return len(t.itemsOf) }

var (
	_ ItemsAppender = (*Fixed)(nil)
	_ ItemsAppender = (*Table)(nil)
)

// BlockUniverse returns an exclusive upper bound on the block IDs that
// BlockOf can produce for items in [0, universe), or 0 if no useful bound
// is known for the geometry. It is how bounded (dense-path) policies size
// their block-ID structures from an item-universe bound.
func BlockUniverse(g Geometry, universe int) int {
	if universe <= 0 {
		return 0
	}
	switch t := g.(type) {
	case *Fixed:
		return (universe-1)/t.b + 1
	case *Table:
		// Pseudo-blocks are offset past the declared range by the item ID.
		return t.NumBlocks() + universe
	default:
		return 0
	}
}

// ItemUniverse expands an exclusive item-ID bound (e.g. Trace.Universe)
// to one closed under block membership: every sibling of every item below
// universe is also below the result. Block-loading policies and recorders
// on the bounded path index arrays by *loaded* items, which include
// siblings the trace itself never requests, so they must be sized with
// this bound rather than the raw trace bound. Returns 0 (no bound — the
// dense paths fall back to generic) for unknown geometries.
func ItemUniverse(g Geometry, universe int) int {
	if universe <= 0 {
		return 0
	}
	switch t := g.(type) {
	case *Fixed:
		return (universe-1)/t.b*t.b + t.b // round up to a block boundary
	case *Table:
		// Declared blocks may contain items ≥ universe; items outside the
		// table live in singleton pseudo-blocks and add nothing.
		max := universe
		for _, items := range t.itemsOf {
			for _, it := range items {
				if int(it) >= max {
					max = int(it) + 1
				}
			}
		}
		return max
	default:
		return 0
	}
}

// Config bundles the standing parameters of a GC caching instance.
type Config struct {
	// CacheSize is k, the number of unit-size items the cache can hold.
	CacheSize int
	// Geometry is the item-to-block partition.
	Geometry Geometry
}

// Validate reports whether the configuration is usable. The paper assumes
// k ≥ B (in fact k ≫ B); we only require k ≥ 1 and a geometry, leaving
// k ≥ B checks to policies that need them.
func (c Config) Validate() error {
	if c.CacheSize < 1 {
		return fmt.Errorf("model: cache size %d < 1", c.CacheSize)
	}
	if c.Geometry == nil {
		return fmt.Errorf("model: nil geometry")
	}
	return nil
}
