package model

import (
	"testing"
	"testing/quick"
)

func TestFixedBlockOf(t *testing.T) {
	g := NewFixed(4)
	cases := []struct {
		it   Item
		want Block
	}{
		{0, 0}, {3, 0}, {4, 1}, {7, 1}, {8, 2}, {1023, 255},
	}
	for _, c := range cases {
		if got := g.BlockOf(c.it); got != c.want {
			t.Errorf("BlockOf(%d) = %d, want %d", c.it, got, c.want)
		}
	}
}

func TestFixedItemsOf(t *testing.T) {
	g := NewFixed(3)
	items := g.ItemsOf(2)
	want := []Item{6, 7, 8}
	if len(items) != len(want) {
		t.Fatalf("ItemsOf(2) = %v, want %v", items, want)
	}
	for i := range want {
		if items[i] != want[i] {
			t.Errorf("ItemsOf(2)[%d] = %d, want %d", i, items[i], want[i])
		}
	}
}

func TestFixedBlockSize(t *testing.T) {
	for _, b := range []int{1, 2, 64, 4096} {
		if got := NewFixed(b).BlockSize(); got != b {
			t.Errorf("BlockSize() = %d, want %d", got, b)
		}
	}
}

func TestFixedPanicsOnBadB(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFixed(0) did not panic")
		}
	}()
	NewFixed(0)
}

func TestFixedIndexInBlock(t *testing.T) {
	g := NewFixed(8)
	if got := g.IndexInBlock(13); got != 5 {
		t.Errorf("IndexInBlock(13) = %d, want 5", got)
	}
}

// Property: every item of Fixed geometry round-trips through its block.
func TestFixedRoundTrip(t *testing.T) {
	for _, b := range []int{1, 2, 7, 64} {
		g := NewFixed(b)
		prop := func(raw uint32) bool {
			it := Item(raw)
			blk := g.BlockOf(it)
			found := false
			for _, x := range g.ItemsOf(blk) {
				if x == it {
					found = true
				}
				if g.BlockOf(x) != blk {
					return false
				}
			}
			return found
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("B=%d: %v", b, err)
		}
	}
}

// Property: Fixed blocks of consecutive IDs are disjoint and contiguous.
func TestFixedBlocksDisjoint(t *testing.T) {
	g := NewFixed(5)
	seen := make(map[Item]bool)
	for b := Block(0); b < 100; b++ {
		for _, it := range g.ItemsOf(b) {
			if seen[it] {
				t.Fatalf("item %d in two blocks", it)
			}
			seen[it] = true
		}
	}
	if len(seen) != 500 {
		t.Fatalf("expected 500 distinct items, got %d", len(seen))
	}
}

func TestTableBasic(t *testing.T) {
	g := MustTable([][]Item{{10, 11, 12}, {20}, {30, 31}})
	if g.BlockSize() != 3 {
		t.Errorf("BlockSize = %d, want 3", g.BlockSize())
	}
	if g.NumBlocks() != 3 {
		t.Errorf("NumBlocks = %d, want 3", g.NumBlocks())
	}
	if g.BlockOf(11) != 0 || g.BlockOf(20) != 1 || g.BlockOf(31) != 2 {
		t.Error("BlockOf wrong for declared items")
	}
	items := g.ItemsOf(0)
	if len(items) != 3 || items[0] != 10 || items[2] != 12 {
		t.Errorf("ItemsOf(0) = %v", items)
	}
}

func TestTableDuplicateItem(t *testing.T) {
	if _, err := NewTable([][]Item{{1, 2}, {2, 3}}); err == nil {
		t.Fatal("duplicate item accepted")
	}
}

func TestTableEmptyBlock(t *testing.T) {
	if _, err := NewTable([][]Item{{1}, {}}); err == nil {
		t.Fatal("empty block accepted")
	}
}

func TestTablePseudoBlocks(t *testing.T) {
	g := MustTable([][]Item{{0, 1}})
	// Item 99 is undeclared: it should live in a singleton pseudo-block
	// that round-trips.
	b := g.BlockOf(99)
	items := g.ItemsOf(b)
	if len(items) != 1 || items[0] != 99 {
		t.Fatalf("pseudo block of 99 = %v", items)
	}
	// Pseudo-blocks must not collide with declared blocks.
	if b == g.BlockOf(0) {
		t.Fatal("pseudo block collides with declared block")
	}
}

func TestTablePseudoBlocksDistinct(t *testing.T) {
	g := MustTable([][]Item{{0}})
	if g.BlockOf(100) == g.BlockOf(101) {
		t.Fatal("distinct undeclared items share a pseudo-block")
	}
}

func TestConfigValidate(t *testing.T) {
	g := NewFixed(4)
	if err := (Config{CacheSize: 8, Geometry: g}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{CacheSize: 0, Geometry: g}).Validate(); err == nil {
		t.Error("zero cache size accepted")
	}
	if err := (Config{CacheSize: 8}).Validate(); err == nil {
		t.Error("nil geometry accepted")
	}
}

func TestMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustTable with dup did not panic")
		}
	}()
	MustTable([][]Item{{1}, {1}})
}
