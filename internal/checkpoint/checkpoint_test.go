package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Snapshot {
	return &Snapshot{
		Kind: "sweep",
		Meta: map[string]int64{"n": 128, "k": 32, "hash": -7},
		Sections: map[string][]byte{
			"results": {1, 2, 3, 0, 255},
			"empty":   {},
		},
	}
}

func equal(a, b *Snapshot) bool {
	if a.Kind != b.Kind || len(a.Meta) != len(b.Meta) || len(a.Sections) != len(b.Sections) {
		return false
	}
	for k, v := range a.Meta {
		if b.Meta[k] != v {
			return false
		}
	}
	for n, s := range a.Sections {
		bs, ok := b.Sections[n]
		if !ok || !bytes.Equal(s, bs) {
			return false
		}
	}
	return true
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sample()
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !equal(s, got) {
		t.Fatalf("round trip changed snapshot:\n in %+v\nout %+v", s, got)
	}
}

func TestEncodingIsCanonical(t *testing.T) {
	// Two snapshots with the same content but different construction
	// order must encode identically — resume determinism depends on it.
	a := sample()
	b := &Snapshot{Kind: "sweep", Meta: map[string]int64{}, Sections: map[string][]byte{}}
	b.Sections["empty"] = []byte{}
	b.Sections["results"] = []byte{1, 2, 3, 0, 255}
	b.Meta["hash"] = -7
	b.Meta["k"] = 32
	b.Meta["n"] = 128
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("encodings of equal snapshots differ")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := sample().Encode()
	// Flip every single byte in turn: each corruption must produce an
	// error (the CRC catches it), never a panic or a silent success.
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("byte %d flipped: decode succeeded", i)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	enc := sample().Encode()
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes: decode succeeded", n)
		}
	}
	if _, err := Decode(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte: decode succeeded")
	}
}

func TestDecodeRejectsWrongMagic(t *testing.T) {
	if _, err := Decode([]byte("gctrace\x01 not a checkpoint....")); err == nil {
		t.Fatal("foreign magic accepted")
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	s := sample()
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(s, got) {
		t.Fatal("loaded snapshot differs from saved")
	}
	// Overwrite with new content: rename must replace, and no temp files
	// may be left behind.
	s.Meta["n"] = 999
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.MetaInt("n", 0) != 999 {
		t.Fatalf("overwrite not visible: n = %d", got.MetaInt("n", 0))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestSaveFailsLoudlyOnBadDir(t *testing.T) {
	if err := Save(filepath.Join(t.TempDir(), "no", "such", "dir", "x.ckpt"), sample()); err == nil {
		t.Fatal("Save into a missing directory succeeded")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.ckpt")); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}

// seal appends the CRC-32 footer to a hand-built body so crafted
// encodings get past the checksum and exercise the structural checks.
func seal(body []byte) []byte {
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	return append(append([]byte(nil), body...), crc[:]...)
}

// craft builds an encoding body from the magic plus parts.
func craft(parts ...[]byte) []byte {
	body := append([]byte(nil), magic[:]...)
	for _, p := range parts {
		body = append(body, p...)
	}
	return body
}

func uv(v uint64) []byte  { return binary.AppendUvarint(nil, v) }
func str(s string) []byte { return append(uv(uint64(len(s))), s...) }
func sv(v int64) []byte   { return binary.AppendVarint(nil, v) }

// TestDecodeRejectsOversizedValues is the hardening audit for the same
// failure class as the trace-header prealloc DoS: every length or count
// field a snapshot declares is checked against an explicit cap before a
// single byte of it is trusted, with an error message naming what blew
// the limit. Table-driven over hand-crafted (valid-CRC) encodings.
func TestDecodeRejectsOversizedValues(t *testing.T) {
	cases := []struct {
		name    string
		body    []byte
		wantErr string // substring of the error message
	}{
		{
			"kind-length-over-cap",
			craft(uv(maxKeyLen + 1)),
			"implausible kind length",
		},
		{
			"meta-count-over-cap",
			craft(str("k"), uv(maxEntries+1)),
			"implausible meta count",
		},
		{
			"meta-key-length-over-cap",
			craft(str("k"), uv(1), uv(maxKeyLen+1)),
			"implausible meta key length",
		},
		{
			"section-count-over-cap",
			craft(str("k"), uv(0), uv(maxSectionCount+1)),
			"implausible section count",
		},
		{
			"section-name-length-over-cap",
			craft(str("k"), uv(0), uv(1), uv(maxNameLen+1)),
			"implausible section name length",
		},
		{
			"section-length-past-input",
			craft(str("k"), uv(0), uv(1), str("s"), uv(1<<30)),
			"exceeds remaining input",
		},
		{
			"section-length-over-cap",
			craft(str("k"), uv(0), uv(1), str("s"), uv(maxBodySize+1)),
			"implausible section length",
		},
		{
			"duplicate-meta-key",
			craft(str("k"), uv(2), str("dup"), sv(1), str("dup"), sv(2), uv(0)),
			`duplicate meta key "dup"`,
		},
		{
			"duplicate-section",
			craft(str("k"), uv(0), uv(2), str("dup"), uv(0), str("dup"), uv(0)),
			`duplicate section "dup"`,
		},
		{
			"trailing-garbage",
			craft(str("k"), uv(0), uv(0), []byte{0xFF, 0xFF}),
			"trailing bytes",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Decode(seal(c.body))
			if err == nil {
				t.Fatalf("decode accepted a %s encoding", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestDecodeCapsBoundAllocation decodes an adversarial encoding that
// declares maximal counts with no backing bytes and asserts the
// rejection happens without the declared memory ever being reserved:
// the caps fire on the declaration, so peak allocation stays
// proportional to the (tiny) input.
func TestDecodeCapsBoundAllocation(t *testing.T) {
	// Declares 2^20 meta entries in a 20-byte file. Decode pre-sizes the
	// map from the declaration only after the cap check passes — so this
	// must error on the first missing key, not OOM.
	body := craft(str("k"), uv(maxEntries))
	if _, err := Decode(seal(body)); err == nil {
		t.Fatal("decode accepted a count-without-content encoding")
	}
}

func TestAccessors(t *testing.T) {
	s := sample()
	if s.MetaInt("n", 0) != 128 || s.MetaInt("absent", -3) != -3 {
		t.Error("MetaInt wrong")
	}
	if s.Get("results") == nil || s.Get("absent") != nil {
		t.Error("Get wrong")
	}
	var empty Snapshot
	if empty.Get("x") != nil || empty.MetaInt("x", 5) != 5 {
		t.Error("zero-value accessors wrong")
	}
}
