package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Snapshot {
	return &Snapshot{
		Kind: "sweep",
		Meta: map[string]int64{"n": 128, "k": 32, "hash": -7},
		Sections: map[string][]byte{
			"results": {1, 2, 3, 0, 255},
			"empty":   {},
		},
	}
}

func equal(a, b *Snapshot) bool {
	if a.Kind != b.Kind || len(a.Meta) != len(b.Meta) || len(a.Sections) != len(b.Sections) {
		return false
	}
	for k, v := range a.Meta {
		if b.Meta[k] != v {
			return false
		}
	}
	for n, s := range a.Sections {
		bs, ok := b.Sections[n]
		if !ok || !bytes.Equal(s, bs) {
			return false
		}
	}
	return true
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sample()
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !equal(s, got) {
		t.Fatalf("round trip changed snapshot:\n in %+v\nout %+v", s, got)
	}
}

func TestEncodingIsCanonical(t *testing.T) {
	// Two snapshots with the same content but different construction
	// order must encode identically — resume determinism depends on it.
	a := sample()
	b := &Snapshot{Kind: "sweep", Meta: map[string]int64{}, Sections: map[string][]byte{}}
	b.Sections["empty"] = []byte{}
	b.Sections["results"] = []byte{1, 2, 3, 0, 255}
	b.Meta["hash"] = -7
	b.Meta["k"] = 32
	b.Meta["n"] = 128
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("encodings of equal snapshots differ")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := sample().Encode()
	// Flip every single byte in turn: each corruption must produce an
	// error (the CRC catches it), never a panic or a silent success.
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("byte %d flipped: decode succeeded", i)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	enc := sample().Encode()
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes: decode succeeded", n)
		}
	}
	if _, err := Decode(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte: decode succeeded")
	}
}

func TestDecodeRejectsWrongMagic(t *testing.T) {
	if _, err := Decode([]byte("gctrace\x01 not a checkpoint....")); err == nil {
		t.Fatal("foreign magic accepted")
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	s := sample()
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(s, got) {
		t.Fatal("loaded snapshot differs from saved")
	}
	// Overwrite with new content: rename must replace, and no temp files
	// may be left behind.
	s.Meta["n"] = 999
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.MetaInt("n", 0) != 999 {
		t.Fatalf("overwrite not visible: n = %d", got.MetaInt("n", 0))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestSaveFailsLoudlyOnBadDir(t *testing.T) {
	if err := Save(filepath.Join(t.TempDir(), "no", "such", "dir", "x.ckpt"), sample()); err == nil {
		t.Fatal("Save into a missing directory succeeded")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.ckpt")); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}

func TestAccessors(t *testing.T) {
	s := sample()
	if s.MetaInt("n", 0) != 128 || s.MetaInt("absent", -3) != -3 {
		t.Error("MetaInt wrong")
	}
	if s.Get("results") == nil || s.Get("absent") != nil {
		t.Error("Get wrong")
	}
	var empty Snapshot
	if empty.Get("x") != nil || empty.MetaInt("x", 5) != 5 {
		t.Error("zero-value accessors wrong")
	}
}
