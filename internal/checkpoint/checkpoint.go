// Package checkpoint provides the atomic snapshot files behind the
// repository's checkpoint/resume machinery: long sweeps and solver runs
// periodically persist their completed work so a cancelled, killed, or
// over-deadline run can resume instead of starting over.
//
// A Snapshot is a small keyed container — a kind tag, integer metadata,
// and named binary sections — with a canonical binary encoding (sorted
// keys, varint lengths) and a CRC-32 footer. The decoder rejects
// truncation, trailing garbage, bad checksums, and implausible lengths
// with clean errors; it never panics and never allocates beyond the
// input size (fuzzed in internal/trace/fuzz_test.go). Domain packages
// define what goes in the sections (opt.Checkpoint for the exact
// solver, cachesim for sweep results) — this package only guarantees
// that what was saved is what is loaded, or an error.
//
// Save writes through a temp file in the target directory and renames
// it into place, so a crash mid-write leaves either the old snapshot or
// the new one, never a torn file.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// magic identifies the gccache checkpoint format, version 1.
var magic = [8]byte{'g', 'c', 'c', 'k', 'p', 't', 0, 1}

// Limits keep the decoder from over-allocating on adversarial input —
// the same failure class as the trace-header prealloc DoS: a length
// field must never be trusted before the bytes it promises exist. Real
// snapshots are far smaller; the meta cap (1<<20 entries) matches the
// largest grids the experiment harness runs, while sections are a
// handful of named blobs (sweep results, solver frontiers, cluster
// warm sets), so their count and name lengths get much tighter caps.
const (
	maxKeyLen       = 1 << 12
	maxEntries      = 1 << 20
	maxSectionCount = 1 << 12
	maxNameLen      = 1 << 8
	maxBodySize     = 1 << 31
)

// Snapshot is one checkpoint: a kind tag naming the producer, integer
// metadata (grid sizes, trace hashes, completed counts), and named
// binary sections holding the partial results themselves.
type Snapshot struct {
	Kind     string
	Meta     map[string]int64
	Sections map[string][]byte
}

// Get returns the named section, or nil when absent.
func (s *Snapshot) Get(name string) []byte {
	if s.Sections == nil {
		return nil
	}
	return s.Sections[name]
}

// MetaInt returns Meta[key], or def when absent.
func (s *Snapshot) MetaInt(key string, def int64) int64 {
	if v, ok := s.Meta[key]; ok {
		return v
	}
	return def
}

// Encode renders the snapshot in the canonical binary form: magic, kind,
// meta entries sorted by key, sections sorted by name, CRC-32 (IEEE) of
// everything before the checksum. Encodings of equal snapshots are
// byte-identical, which the resume-determinism tests rely on.
func (s *Snapshot) Encode() []byte {
	out := append([]byte(nil), magic[:]...)
	out = appendString(out, s.Kind)

	metaKeys := make([]string, 0, len(s.Meta))
	for k := range s.Meta {
		metaKeys = append(metaKeys, k)
	}
	sort.Strings(metaKeys)
	out = binary.AppendUvarint(out, uint64(len(metaKeys)))
	for _, k := range metaKeys {
		out = appendString(out, k)
		out = binary.AppendVarint(out, s.Meta[k])
	}

	secNames := make([]string, 0, len(s.Sections))
	for n := range s.Sections {
		secNames = append(secNames, n)
	}
	sort.Strings(secNames)
	out = binary.AppendUvarint(out, uint64(len(secNames)))
	for _, n := range secNames {
		out = appendString(out, n)
		out = binary.AppendUvarint(out, uint64(len(s.Sections[n])))
		out = append(out, s.Sections[n]...)
	}

	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(out))
	return append(out, crc[:]...)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decoder walks an in-memory encoding with bounds checking.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("checkpoint: truncated %s", what)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint(what string) (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("checkpoint: truncated %s", what)
	}
	d.off += n
	return v, nil
}

func (d *decoder) bytes(n uint64, what string) ([]byte, error) {
	if n > uint64(len(d.b)-d.off) {
		return nil, fmt.Errorf("checkpoint: %s length %d exceeds remaining input", what, n)
	}
	out := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return out, nil
}

// sizeHint clamps a declared entry count to what the undecoded input
// could possibly contain (entries occupy at least two bytes each), so
// map pre-sizing never trusts a count the bytes cannot back.
func (d *decoder) sizeHint(declared uint64) int {
	most := uint64(len(d.b)-d.off) / 2
	if declared > most {
		return int(most)
	}
	return int(declared)
}

func (d *decoder) str(maxLen uint64, what string) (string, error) {
	n, err := d.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > maxLen {
		return "", fmt.Errorf("checkpoint: implausible %s length %d", what, n)
	}
	b, err := d.bytes(n, what)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Decode parses an Encode output. Corrupted, truncated, or trailing
// input yields an error, never a panic and never a silently partial
// snapshot.
func Decode(raw []byte) (*Snapshot, error) {
	if len(raw) < len(magic)+4 {
		return nil, fmt.Errorf("checkpoint: %d bytes is shorter than header+checksum", len(raw))
	}
	body, crc := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(body); got != crc {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (file %08x, computed %08x)", crc, got)
	}
	if [8]byte(body[:8]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", body[:8])
	}
	d := &decoder{b: body, off: len(magic)}
	s := &Snapshot{}
	var err error
	if s.Kind, err = d.str(maxKeyLen, "kind"); err != nil {
		return nil, err
	}

	nMeta, err := d.uvarint("meta count")
	if err != nil {
		return nil, err
	}
	if nMeta > maxEntries {
		return nil, fmt.Errorf("checkpoint: implausible meta count %d", nMeta)
	}
	// Pre-size from the declaration only up to what the remaining input
	// could physically hold (each entry is ≥ 2 bytes), so a tiny file
	// declaring the maximum count cannot reserve megabytes up front —
	// the map simply grows if the declaration turns out honest.
	s.Meta = make(map[string]int64, d.sizeHint(nMeta))
	for i := uint64(0); i < nMeta; i++ {
		k, err := d.str(maxKeyLen, "meta key")
		if err != nil {
			return nil, err
		}
		if _, dup := s.Meta[k]; dup {
			return nil, fmt.Errorf("checkpoint: duplicate meta key %q", k)
		}
		if s.Meta[k], err = d.varint("meta value"); err != nil {
			return nil, err
		}
	}

	nSec, err := d.uvarint("section count")
	if err != nil {
		return nil, err
	}
	if nSec > maxSectionCount {
		return nil, fmt.Errorf("checkpoint: implausible section count %d", nSec)
	}
	s.Sections = make(map[string][]byte, d.sizeHint(nSec))
	for i := uint64(0); i < nSec; i++ {
		name, err := d.str(maxNameLen, "section name")
		if err != nil {
			return nil, err
		}
		if _, dup := s.Sections[name]; dup {
			return nil, fmt.Errorf("checkpoint: duplicate section %q", name)
		}
		n, err := d.uvarint("section length")
		if err != nil {
			return nil, err
		}
		if n > maxBodySize {
			return nil, fmt.Errorf("checkpoint: implausible section length %d", n)
		}
		b, err := d.bytes(n, "section "+name)
		if err != nil {
			return nil, err
		}
		s.Sections[name] = append([]byte(nil), b...)
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes", len(body)-d.off)
	}
	return s, nil
}

// Save atomically writes the snapshot to path: the encoding goes to a
// temp file in the same directory, is synced, and is renamed into
// place. A crash at any point leaves either the previous file or the
// complete new one.
func Save(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(s.Encode()); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Load reads and decodes the snapshot at path.
func Load(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s, err := Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}
