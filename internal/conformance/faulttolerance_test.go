package conformance

import (
	"bytes"
	"context"
	"sort"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/faults"
	"gccache/internal/model"
)

// panicAt wraps a Cache so that a fault injector can strike mid-trace:
// the at-th Access calls inj.Step(idx) before serving the request,
// leaving the underlying cache with genuinely half-replayed policy
// state when the injected panic unwinds. Everything else delegates.
type panicAt struct {
	cachesim.Cache
	inj   *faults.Injector
	idx   int
	at    int
	count int
}

func (p *panicAt) Access(it model.Item) cachesim.Access {
	if p.count == p.at {
		p.inj.Step(p.idx)
	}
	p.count++
	return p.Cache.Access(it)
}

// TestConformanceResetSurvivesInjectedPanic certifies the pooled-reuse
// contract under faults: a worker panic that abandons a cache mid-trace
// must not leak poisoned state into the retry, because the retry path
// (like every pooled sweep) starts with Reset plus Reseed. Every
// policy's hardened-sweep statistics must be byte-identical to a
// fault-free run with fresh caches.
func TestConformanceResetSurvivesInjectedPanic(t *testing.T) {
	const k, B = 32, 8
	const seed = 11
	geo := model.NewFixed(B)
	wls := conformanceWorkloads(t, B, seed)
	universe := 0
	wnames := make([]string, 0, len(wls))
	for n, tr := range wls {
		wnames = append(wnames, n)
		if u := tr.Universe(); u > universe {
			universe = u
		}
	}
	sort.Strings(wnames)
	mks := builders(k, geo, seed)
	for n, mk := range boundedBuilders(k, geo, seed, universe) {
		mks[n] = mk
	}
	pnames := make([]string, 0, len(mks))
	for n := range mks {
		pnames = append(pnames, n)
	}
	sort.Strings(pnames)

	type cell struct{ pi, wi int }
	cells := make([]cell, 0, len(pnames)*len(wnames))
	for pi := range pnames {
		for wi := range wnames {
			cells = append(cells, cell{pi, wi})
		}
	}

	// Fault-free baseline: a fresh cache per cell.
	want := make([][]byte, len(cells))
	for ci, c := range cells {
		st := cachesim.Run(mks[pnames[c.pi]](), wls[wnames[c.wi]])
		want[ci] = cachesim.AppendStats(nil, st)
	}

	inj := faults.New(faults.Plan{Seed: 5, PanicFrac: 0.3, PanicAttempts: 1})
	scheduled := inj.PanicIndices(len(cells))
	if len(scheduled) == 0 {
		t.Fatal("fault plan scheduled no panics; the test would certify nothing")
	}

	got := make([][]byte, len(cells))
	var st cachesim.SweepStats
	quar, err := cachesim.SweepHardened(context.Background(), len(cells), 4,
		cachesim.RetryPolicy{MaxRetries: 1},
		&st,
		func() []cachesim.Cache { return make([]cachesim.Cache, len(pnames)) },
		func(ci int, pool []cachesim.Cache) {
			c := cells[ci]
			cache := pool[c.pi]
			if cache == nil {
				cache = mks[pnames[c.pi]]()
				pool[c.pi] = cache
			} else {
				cache.Reset()
				if rs, ok := cache.(cachesim.Reseeder); ok {
					rs.Reseed(seed)
				}
			}
			tr := wls[wnames[c.wi]]
			wrapped := &panicAt{Cache: cache, inj: inj, idx: ci, at: len(tr) / 2}
			got[ci] = cachesim.AppendStats(nil, cachesim.Run(wrapped, tr))
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(quar) != 0 {
		t.Fatalf("one retry should clear every scheduled panic; quarantined %v", quar)
	}
	for _, i := range scheduled {
		if n := inj.Attempts(i); n != 2 {
			t.Errorf("scheduled index %d ran %d attempts, want 2 (panic + retry)", i, n)
		}
	}
	for ci := range cells {
		if !bytes.Equal(got[ci], want[ci]) {
			c := cells[ci]
			t.Errorf("%s on %s: pooled run after injected panic diverges from fault-free run",
				pnames[c.pi], wnames[c.wi])
		}
	}
}

// TestConformanceValidatorAfterInjectedPanic replays the retry path
// through the full Definition 1 validator: after a mid-trace panic
// poisons a pooled cache, Reset+Reseed must return it to a state the
// validator certifies as conformant from scratch.
func TestConformanceValidatorAfterInjectedPanic(t *testing.T) {
	const k, B = 16, 8
	const seed = 3
	geo := model.NewFixed(B)
	tr := conformanceWorkloads(t, B, seed)["blockruns"]
	inj := faults.New(faults.Plan{Seed: 9, PanicFrac: 1, PanicAttempts: 1})
	mks := builders(k, geo, seed)
	for n, mk := range boundedBuilders(k, geo, seed, tr.Universe()) {
		mks[n] = mk
	}
	pnames := make([]string, 0, len(mks))
	for n := range mks {
		pnames = append(pnames, n)
	}
	sort.Strings(pnames)
	for pi, pname := range pnames {
		cache := mks[pname]()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: injected panic did not fire", pname)
				}
			}()
			wrapped := &panicAt{Cache: cache, inj: inj, idx: pi, at: len(tr) / 2}
			cachesim.Run(wrapped, tr)
		}()
		cache.Reset()
		if rs, ok := cache.(cachesim.Reseeder); ok {
			rs.Reseed(seed)
		}
		v := cachesim.NewValidator(cache, geo)
		cachesim.Run(v, tr)
		if err := v.Err(); err != nil {
			t.Errorf("%s: validator rejects retry after mid-trace panic: %v", pname, err)
		}
	}
}
