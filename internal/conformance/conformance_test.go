// Package conformance certifies every replacement policy in the
// repository against the paper's Definition 1, by replaying diverse
// workloads through the cachesim.Validator wrapper: hits only on resident
// items, loads only on misses and only within the requested block, net
// change reporting, demand caching, capacity, and Contains/Len agreement.
package conformance

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/policy"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

// builders enumerates every policy at a given capacity and geometry.
func builders(k int, geo model.Geometry, seed int64) map[string]func() cachesim.Cache {
	return map[string]func() cachesim.Cache{
		"item-lru":    func() cachesim.Cache { return policy.NewItemLRU(k) },
		"item-clock":  func() cachesim.Cache { return policy.NewClock(k) },
		"fifo":        func() cachesim.Cache { return policy.NewFIFO(k) },
		"random":      func() cachesim.Cache { return policy.NewRandomEvict(k, seed) },
		"marking":     func() cachesim.Cache { return policy.NewMarking(k, seed) },
		"block-lru":   func() cachesim.Cache { return policy.NewBlockLRU(k, geo) },
		"athresh-1":   func() cachesim.Cache { return policy.NewBlockLoadItemEvict(k, geo) },
		"athresh-2":   func() cachesim.Cache { return policy.NewAThreshold(k, 2, geo) },
		"athresh-B":   func() cachesim.Cache { return policy.NewAThreshold(k, geo.BlockSize(), geo) },
		"footprint":   func() cachesim.Cache { return policy.NewFootprint(k, geo) },
		"gcm":         func() cachesim.Cache { return core.NewGCM(k, geo, seed) },
		"gcm-markall": func() cachesim.Cache { return core.NewGCMMarkAll(k, geo, seed) },
		"iblp-even":   func() cachesim.Cache { return core.NewIBLPEvenSplit(k, geo) },
		"iblp-item-heavy": func() cachesim.Cache {
			return core.NewIBLP(k-k/4, k/4, geo)
		},
		"iblp-block-heavy": func() cachesim.Cache {
			return core.NewIBLP(k/4, k-k/4, geo)
		},
		"iblp-promote-all": func() cachesim.Cache {
			return core.NewIBLPPromoteAll(k/2, k/2, geo)
		},
		"iblp-exclusive": func() cachesim.Cache {
			return core.NewIBLPExclusive(k/2, k/2, geo)
		},
		"iblp-inclusive": func() cachesim.Cache {
			return core.NewIBLPInclusive(k/2, k/2, geo)
		},
		"adaptive-iblp": func() cachesim.Cache {
			return core.NewAdaptiveIBLP(k, geo)
		},
	}
}

// boundedBuilders enumerates the dense-path (bounded) constructors,
// which must conform exactly like their generic counterparts. universe
// must be at least the trace's item bound (constructors expand it to
// whole blocks themselves).
func boundedBuilders(k int, geo model.Geometry, seed int64, universe int) map[string]func() cachesim.Cache {
	return map[string]func() cachesim.Cache{
		"item-lru-dense":  func() cachesim.Cache { return policy.NewItemLRUBounded(k, universe) },
		"block-lru-dense": func() cachesim.Cache { return policy.NewBlockLRUBounded(k, geo, universe) },
		"gcm-dense":       func() cachesim.Cache { return core.NewGCMBounded(k, geo, seed, universe) },
		"iblp-even-dense": func() cachesim.Cache { return core.NewIBLPEvenSplitBounded(k, geo, universe) },
	}
}

// conformanceWorkloads returns stress traces spanning the locality
// spectrum plus tight-capacity randomness.
func conformanceWorkloads(t *testing.T, B int, seed int64) map[string]trace.Trace {
	t.Helper()
	runs, err := workload.BlockRuns(workload.BlockRunsConfig{
		NumBlocks: 64, BlockSize: B, MeanRunLength: float64(B) / 2,
		ZipfS: 1.3, Length: 8000, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	uniform := make(trace.Trace, 8000)
	for i := range uniform {
		uniform[i] = model.Item(rng.Intn(16 * B))
	}
	return map[string]trace.Trace{
		"sequential": workload.Sequential(0, 8000),
		"cyclic":     workload.CyclicScan(4*B, 8000),
		"stride":     workload.Stride(96, B, 8000),
		"blockruns":  runs,
		"uniform":    uniform,
	}
}

func TestAllPoliciesConformToModel(t *testing.T) {
	for _, cfg := range []struct{ k, B int }{
		{64, 8}, // roomy
		{16, 8}, // k = 2B: tight
		{9, 8},  // k barely above B
		{8, 8},  // k = B: extreme pressure
		{64, 1}, // degenerate blocks (traditional caching)
	} {
		geo := model.NewFixed(cfg.B)
		for wname, tr := range conformanceWorkloads(t, cfg.B, 7) {
			mks := builders(cfg.k, geo, 7)
			for n, mk := range boundedBuilders(cfg.k, geo, 7, tr.Universe()) {
				mks[n] = mk
			}
			for pname, mk := range mks {
				t.Run(fmt.Sprintf("k%d-B%d/%s/%s", cfg.k, cfg.B, wname, pname), func(t *testing.T) {
					v := cachesim.NewValidator(mk(), geo)
					cachesim.Run(v, tr)
					if err := v.Err(); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

func TestConformanceSurvivesReset(t *testing.T) {
	geo := model.NewFixed(4)
	mks := builders(16, geo, 3)
	for n, mk := range boundedBuilders(16, geo, 3, 500) {
		mks[n] = mk
	}
	for pname, mk := range mks {
		v := cachesim.NewValidator(mk(), geo)
		cachesim.Run(v, workload.Sequential(0, 500))
		v.Reset()
		cachesim.Run(v, workload.CyclicScan(32, 500))
		if err := v.Err(); err != nil {
			t.Errorf("%s: %v", pname, err)
		}
	}
}

// TestConformancePooledSweep drives the chunked Sweep engine over the
// full policy × workload grid, pooling one cache per policy per worker
// and reusing it (Reset, plus Reseed for randomized policies) across the
// worker's cells — certifying that the pooled-reuse fast path the
// experiment runners rely on still conforms to Definition 1.
func TestConformancePooledSweep(t *testing.T) {
	const k, B = 32, 8
	const seed = 11
	geo := model.NewFixed(B)
	wls := conformanceWorkloads(t, B, seed)
	universe := 0
	wnames := make([]string, 0, len(wls))
	for n, tr := range wls {
		wnames = append(wnames, n)
		if u := tr.Universe(); u > universe {
			universe = u
		}
	}
	sort.Strings(wnames)
	mks := builders(k, geo, seed)
	for n, mk := range boundedBuilders(k, geo, seed, universe) {
		mks[n] = mk
	}
	pnames := make([]string, 0, len(mks))
	for n := range mks {
		pnames = append(pnames, n)
	}
	sort.Strings(pnames)

	type cell struct{ pi, wi int }
	cells := make([]cell, 0, len(pnames)*len(wnames))
	for pi := range pnames {
		for wi := range wnames {
			cells = append(cells, cell{pi, wi})
		}
	}
	errs := make([]error, len(cells))
	cachesim.Sweep(len(cells), 0, func() []cachesim.Cache {
		return make([]cachesim.Cache, len(pnames))
	}, func(ci int, pool []cachesim.Cache) {
		c := cells[ci]
		cache := pool[c.pi]
		if cache == nil {
			cache = mks[pnames[c.pi]]()
			pool[c.pi] = cache
		} else {
			cache.Reset()
			if rs, ok := cache.(cachesim.Reseeder); ok {
				rs.Reseed(seed)
			}
		}
		v := cachesim.NewValidator(cache, geo)
		cachesim.Run(v, wls[wnames[c.wi]])
		errs[ci] = v.Err() // distinct slot per cell: no lock needed
	})
	for ci, err := range errs {
		if err != nil {
			c := cells[ci]
			t.Errorf("%s on %s (pooled): %v", pnames[c.pi], wnames[c.wi], err)
		}
	}
}

// TestRandomConfigFuzz draws random (k, B, universe) configurations and
// random traces, pushing every policy through the validator — the
// conformance suite's coverage of configurations nobody hand-picked.
func TestRandomConfigFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for round := 0; round < 12; round++ {
		B := 1 + rng.Intn(16)
		k := B + rng.Intn(8*B)
		if k < 4 {
			k = 4 // the k/2-split variants need both layers nonzero
		}
		universe := B * (1 + rng.Intn(20))
		geo := model.NewFixed(B)
		tr := make(trace.Trace, 3000)
		for i := range tr {
			tr[i] = model.Item(rng.Intn(universe))
		}
		mks := builders(k, geo, int64(round))
		for n, mk := range boundedBuilders(k, geo, int64(round), universe) {
			mks[n] = mk
		}
		for pname, mk := range mks {
			v := cachesim.NewValidator(mk(), geo)
			cachesim.Run(v, tr)
			if err := v.Err(); err != nil {
				t.Fatalf("round %d (k=%d B=%d U=%d) %s: %v",
					round, k, B, universe, pname, err)
			}
		}
	}
}
