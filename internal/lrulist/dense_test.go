package lrulist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseEmpty(t *testing.T) {
	d := NewDense[uint64](16)
	if d.Len() != 0 {
		t.Fatalf("Len = %d", d.Len())
	}
	if _, ok := d.Back(); ok {
		t.Error("Back on empty returned ok")
	}
	if _, ok := d.Front(); ok {
		t.Error("Front on empty returned ok")
	}
	if _, ok := d.PopBack(); ok {
		t.Error("PopBack on empty returned ok")
	}
	if d.Remove(3) {
		t.Error("Remove on empty returned true")
	}
	if d.MoveToFront(3) {
		t.Error("MoveToFront on empty returned true")
	}
	if d.Universe() != 16 {
		t.Errorf("Universe = %d, want 16", d.Universe())
	}
}

func TestDenseOrdering(t *testing.T) {
	d := NewDense[uint64](8)
	for _, k := range []uint64{1, 2, 3} {
		if !d.PushFront(k) {
			t.Fatalf("PushFront(%d) reported duplicate", k)
		}
	}
	// Order: 3 2 1 (MRU..LRU)
	if got := d.Keys(); len(got) != 3 || got[0] != 3 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("Keys = %v", got)
	}
	d.MoveToFront(1) // 1 3 2
	if back, _ := d.Back(); back != 2 {
		t.Errorf("Back = %d, want 2", back)
	}
	if front, _ := d.Front(); front != 1 {
		t.Errorf("Front = %d, want 1", front)
	}
	if k, ok := d.PopBack(); !ok || k != 2 {
		t.Errorf("PopBack = %d,%v", k, ok)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestDensePushFrontDuplicatePromotes(t *testing.T) {
	d := NewDense[uint64](4)
	d.PushFront(0)
	d.PushFront(1)
	if d.PushFront(0) {
		t.Error("duplicate PushFront reported new")
	}
	if front, _ := d.Front(); front != 0 {
		t.Errorf("Front = %d, want 0", front)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestDensePushBack(t *testing.T) {
	d := NewDense[uint64](4)
	d.PushFront(1)
	d.PushBack(2) // 1 2
	if back, _ := d.Back(); back != 2 {
		t.Errorf("Back = %d, want 2", back)
	}
	d.PushBack(1) // 2 1: existing key demoted
	if back, _ := d.Back(); back != 1 {
		t.Errorf("Back after demote = %d, want 1", back)
	}
}

func TestDenseClearAndReuse(t *testing.T) {
	d := NewDense[uint64](16)
	for i := uint64(0); i < 10; i++ {
		d.PushFront(i)
	}
	d.Clear()
	if d.Len() != 0 {
		t.Fatalf("Len after Clear = %d", d.Len())
	}
	if d.Contains(5) {
		t.Error("Contains(5) after Clear")
	}
	d.PushFront(14)
	if front, _ := d.Front(); front != 14 {
		t.Errorf("Front = %d", front)
	}
	if got := d.Keys(); len(got) != 1 || got[0] != 14 {
		t.Errorf("Keys after reuse = %v", got)
	}
}

func TestDenseEachEarlyStop(t *testing.T) {
	d := NewDense[uint64](8)
	for i := uint64(0); i < 5; i++ {
		d.PushFront(i)
	}
	n := 0
	d.Each(func(uint64) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("visited %d, want 2", n)
	}
}

func TestDenseOutOfUniversePanics(t *testing.T) {
	d := NewDense[uint64](4)
	defer func() {
		if recover() == nil {
			t.Error("PushFront(4) on universe 4 did not panic")
		}
	}()
	d.PushFront(4)
}

func TestDenseBadUniversePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDense(-1) did not panic")
		}
	}()
	NewDense[uint64](-1)
}

// TestDenseDifferential drives Dense and the naive model with the same
// random operation stream and checks full-order agreement (the mirror of
// TestDifferential for List).
func TestDenseDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense[uint64](30)
	ref := &referenceLRU{}
	for step := 0; step < 20000; step++ {
		k := rng.Intn(30)
		switch rng.Intn(4) {
		case 0:
			d.PushFront(uint64(k))
			ref.pushFront(k)
		case 1:
			d.Remove(uint64(k))
			ref.remove(k)
		case 2:
			d.MoveToFront(uint64(k))
			ref.moveToFront(k)
		case 3:
			a, aok := d.PopBack()
			b, bok := ref.popBack()
			if aok != bok || (aok && a != uint64(b)) {
				t.Fatalf("step %d: PopBack %d,%v vs ref %d,%v", step, a, aok, b, bok)
			}
		}
		if d.Len() != len(ref.keys) {
			t.Fatalf("step %d: Len %d vs ref %d", step, d.Len(), len(ref.keys))
		}
	}
	got := d.Keys()
	if len(got) != len(ref.keys) {
		t.Fatalf("final len %d vs %d", len(got), len(ref.keys))
	}
	for i := range got {
		if got[i] != uint64(ref.keys[i]) {
			t.Fatalf("final order differs at %d: %v vs %v", i, got, ref.keys)
		}
	}
}

// TestDenseVsListCrossCheck drives Dense and the generic List with an
// identical stream of well over 10^5 random operations and asserts they
// stay in lockstep: every PopBack evicts the same key, every probe
// answers identically, and the full MRU→LRU order matches at checkpoints
// and at the end. This is the proof that bounded-universe policies may
// swap one for the other without changing any eviction decision.
func TestDenseVsListCrossCheck(t *testing.T) {
	const (
		universe = 512
		steps    = 200000
	)
	rng := rand.New(rand.NewSource(42))
	d := NewDense[uint64](universe)
	l := New[uint64](universe)
	sameOrder := func(step int) {
		dk, lk := d.Keys(), l.Keys()
		if len(dk) != len(lk) {
			t.Fatalf("step %d: Keys len %d vs %d", step, len(dk), len(lk))
		}
		for i := range dk {
			if dk[i] != lk[i] {
				t.Fatalf("step %d: order differs at %d: dense %v vs list %v", step, i, dk, lk)
			}
		}
	}
	for step := 0; step < steps; step++ {
		k := uint64(rng.Intn(universe))
		switch rng.Intn(8) {
		case 0, 1:
			if dn, ln := d.PushFront(k), l.PushFront(k); dn != ln {
				t.Fatalf("step %d: PushFront(%d) new %v vs %v", step, k, dn, ln)
			}
		case 2:
			if dn, ln := d.PushBack(k), l.PushBack(k); dn != ln {
				t.Fatalf("step %d: PushBack(%d) new %v vs %v", step, k, dn, ln)
			}
		case 3:
			if dok, lok := d.MoveToFront(k), l.MoveToFront(k); dok != lok {
				t.Fatalf("step %d: MoveToFront(%d) %v vs %v", step, k, dok, lok)
			}
		case 4:
			if dok, lok := d.Remove(k), l.Remove(k); dok != lok {
				t.Fatalf("step %d: Remove(%d) %v vs %v", step, k, dok, lok)
			}
		case 5:
			dv, dok := d.PopBack()
			lv, lok := l.PopBack()
			if dok != lok || dv != lv {
				t.Fatalf("step %d: PopBack %d,%v vs %d,%v — eviction order diverged", step, dv, dok, lv, lok)
			}
		case 6:
			if dc, lc := d.Contains(k), l.Contains(k); dc != lc {
				t.Fatalf("step %d: Contains(%d) %v vs %v", step, k, dc, lc)
			}
			db, dok := d.Back()
			lb, lok := l.Back()
			if dok != lok || db != lb {
				t.Fatalf("step %d: Back %d,%v vs %d,%v", step, db, dok, lb, lok)
			}
		case 7:
			if rng.Intn(1000) == 0 {
				d.Clear()
				l.Clear()
			} else {
				df, dok := d.Front()
				lf, lok := l.Front()
				if dok != lok || df != lf {
					t.Fatalf("step %d: Front %d,%v vs %d,%v", step, df, dok, lf, lok)
				}
			}
		}
		if d.Len() != l.Len() {
			t.Fatalf("step %d: Len %d vs %d", step, d.Len(), l.Len())
		}
		if step%5000 == 0 {
			sameOrder(step)
		}
	}
	sameOrder(steps)
}

// Property: after pushing a sequence of distinct keys, Keys() is the
// reverse of the push order (the Dense mirror of TestPushOrderProperty).
func TestDensePushOrderProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		d := NewDense[uint64](256)
		seen := make(map[uint8]bool)
		var distinct []uint8
		for _, k := range raw {
			if !seen[k] {
				seen[k] = true
				distinct = append(distinct, k)
				d.PushFront(uint64(k))
			}
		}
		got := d.Keys()
		if len(got) != len(distinct) {
			return false
		}
		for i := range got {
			if got[i] != uint64(distinct[len(distinct)-1-i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDensePushFrontHit(b *testing.B) {
	d := NewDense[uint64](1024)
	for i := uint64(0); i < 1024; i++ {
		d.PushFront(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushFront(uint64(i) % 1024)
	}
}

func BenchmarkDensePushPopSteadyState(b *testing.B) {
	d := NewDense[uint64](1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushFront(uint64(i) % (1 << 20))
		if d.Len() > 1024 {
			d.PopBack()
		}
	}
}
