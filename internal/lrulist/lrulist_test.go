package lrulist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	l := New[int](0)
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
	if _, ok := l.Back(); ok {
		t.Error("Back on empty returned ok")
	}
	if _, ok := l.Front(); ok {
		t.Error("Front on empty returned ok")
	}
	if _, ok := l.PopBack(); ok {
		t.Error("PopBack on empty returned ok")
	}
	if l.Remove(3) {
		t.Error("Remove on empty returned true")
	}
	if l.MoveToFront(3) {
		t.Error("MoveToFront on empty returned true")
	}
}

func TestOrdering(t *testing.T) {
	l := New[int](4)
	for _, k := range []int{1, 2, 3} {
		if !l.PushFront(k) {
			t.Fatalf("PushFront(%d) reported duplicate", k)
		}
	}
	// Order: 3 2 1 (MRU..LRU)
	if got := l.Keys(); len(got) != 3 || got[0] != 3 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("Keys = %v", got)
	}
	l.MoveToFront(1) // 1 3 2
	if back, _ := l.Back(); back != 2 {
		t.Errorf("Back = %d, want 2", back)
	}
	if front, _ := l.Front(); front != 1 {
		t.Errorf("Front = %d, want 1", front)
	}
	if k, ok := l.PopBack(); !ok || k != 2 {
		t.Errorf("PopBack = %d,%v", k, ok)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
}

func TestPushFrontDuplicatePromotes(t *testing.T) {
	l := New[string](0)
	l.PushFront("a")
	l.PushFront("b")
	if l.PushFront("a") {
		t.Error("duplicate PushFront reported new")
	}
	if front, _ := l.Front(); front != "a" {
		t.Errorf("Front = %q, want a", front)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
}

func TestPushBack(t *testing.T) {
	l := New[int](0)
	l.PushFront(1)
	l.PushBack(2) // 1 2
	if back, _ := l.Back(); back != 2 {
		t.Errorf("Back = %d, want 2", back)
	}
	l.PushBack(1) // 2 1: existing key demoted
	if back, _ := l.Back(); back != 1 {
		t.Errorf("Back after demote = %d, want 1", back)
	}
}

func TestClearAndReuse(t *testing.T) {
	l := New[int](0)
	for i := 0; i < 10; i++ {
		l.PushFront(i)
	}
	l.Clear()
	if l.Len() != 0 {
		t.Fatalf("Len after Clear = %d", l.Len())
	}
	if l.Contains(5) {
		t.Error("Contains(5) after Clear")
	}
	// Reuse pooled nodes.
	l.PushFront(42)
	if front, _ := l.Front(); front != 42 {
		t.Errorf("Front = %d", front)
	}
}

func TestEachEarlyStop(t *testing.T) {
	l := New[int](0)
	for i := 0; i < 5; i++ {
		l.PushFront(i)
	}
	n := 0
	l.Each(func(int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("visited %d, want 2", n)
	}
}

// referenceLRU is a naive slice-backed model for differential testing.
type referenceLRU struct{ keys []int } // index 0 = MRU

func (r *referenceLRU) pushFront(k int) {
	r.remove(k)
	r.keys = append([]int{k}, r.keys...)
}
func (r *referenceLRU) remove(k int) {
	for i, x := range r.keys {
		if x == k {
			r.keys = append(r.keys[:i], r.keys[i+1:]...)
			return
		}
	}
}
func (r *referenceLRU) moveToFront(k int) {
	for _, x := range r.keys {
		if x == k {
			r.pushFront(k)
			return
		}
	}
}
func (r *referenceLRU) popBack() (int, bool) {
	if len(r.keys) == 0 {
		return 0, false
	}
	k := r.keys[len(r.keys)-1]
	r.keys = r.keys[:len(r.keys)-1]
	return k, true
}

// TestDifferential drives the list and a naive model with the same random
// operation stream and checks full-order agreement.
func TestDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := New[int](0)
	ref := &referenceLRU{}
	for step := 0; step < 20000; step++ {
		k := rng.Intn(30)
		switch rng.Intn(4) {
		case 0:
			l.PushFront(k)
			ref.pushFront(k)
		case 1:
			l.Remove(k)
			ref.remove(k)
		case 2:
			l.MoveToFront(k)
			ref.moveToFront(k)
		case 3:
			a, aok := l.PopBack()
			b, bok := ref.popBack()
			if aok != bok || a != b {
				t.Fatalf("step %d: PopBack %d,%v vs ref %d,%v", step, a, aok, b, bok)
			}
		}
		if l.Len() != len(ref.keys) {
			t.Fatalf("step %d: Len %d vs ref %d", step, l.Len(), len(ref.keys))
		}
	}
	got := l.Keys()
	if len(got) != len(ref.keys) {
		t.Fatalf("final len %d vs %d", len(got), len(ref.keys))
	}
	for i := range got {
		if got[i] != ref.keys[i] {
			t.Fatalf("final order differs at %d: %v vs %v", i, got, ref.keys)
		}
	}
}

// Property: after pushing a sequence of distinct keys, Keys() is the
// reverse of the push order.
func TestPushOrderProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		l := New[uint8](0)
		seen := make(map[uint8]bool)
		var distinct []uint8
		for _, k := range raw {
			if !seen[k] {
				seen[k] = true
				distinct = append(distinct, k)
				l.PushFront(k)
			}
		}
		got := l.Keys()
		if len(got) != len(distinct) {
			return false
		}
		for i := range got {
			if got[i] != distinct[len(distinct)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushFrontHit(b *testing.B) {
	l := New[uint64](1024)
	for i := uint64(0); i < 1024; i++ {
		l.PushFront(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.PushFront(uint64(i) % 1024)
	}
}

func BenchmarkPushPopSteadyState(b *testing.B) {
	l := New[uint64](1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.PushFront(uint64(i))
		if l.Len() > 1024 {
			l.PopBack()
		}
	}
}
