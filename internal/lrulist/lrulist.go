// Package lrulist provides an intrusive, allocation-conscious LRU order
// list keyed by comparable IDs. It is the workhorse ordering structure
// shared by every replacement policy in this repository: O(1) lookup,
// promotion, insertion, and victim selection.
//
// The zero value is not usable; construct with New.
package lrulist

// node is a doubly-linked list element. Nodes are pooled and reused to
// keep steady-state simulation allocation-free.
type node[K comparable] struct {
	key        K
	prev, next *node[K]
}

// List maintains a most-recently-used ordering over a set of keys.
// The front is the MRU end; the back is the LRU end.
type List[K comparable] struct {
	byKey map[K]*node[K]
	// head and tail are sentinels; head.next is MRU, tail.prev is LRU.
	head, tail *node[K]
	free       *node[K] // pool of recycled nodes, chained via next
}

// New returns an empty list with capacity hint n.
func New[K comparable](n int) *List[K] {
	l := &List[K]{byKey: make(map[K]*node[K], n)}
	l.head = &node[K]{}
	l.tail = &node[K]{}
	l.head.next = l.tail
	l.tail.prev = l.head
	return l
}

// Len returns the number of keys in the list.
func (l *List[K]) Len() int { return len(l.byKey) }

// Contains reports whether k is in the list.
func (l *List[K]) Contains(k K) bool {
	_, ok := l.byKey[k]
	return ok
}

// PushFront inserts k at the MRU position. If k is already present it is
// promoted instead. It returns true if k was newly inserted.
func (l *List[K]) PushFront(k K) bool {
	if n, ok := l.byKey[k]; ok {
		l.unlink(n)
		l.linkFront(n)
		return false
	}
	n := l.alloc(k)
	l.byKey[k] = n
	l.linkFront(n)
	return true
}

// PushBack inserts k at the LRU position. If k is already present it is
// demoted to the LRU position. It returns true if k was newly inserted.
func (l *List[K]) PushBack(k K) bool {
	if n, ok := l.byKey[k]; ok {
		l.unlink(n)
		l.linkBack(n)
		return false
	}
	n := l.alloc(k)
	l.byKey[k] = n
	l.linkBack(n)
	return true
}

// MoveToFront promotes k to the MRU position. It reports whether k was
// present.
func (l *List[K]) MoveToFront(k K) bool {
	n, ok := l.byKey[k]
	if !ok {
		return false
	}
	l.unlink(n)
	l.linkFront(n)
	return true
}

// Remove deletes k and reports whether it was present.
func (l *List[K]) Remove(k K) bool {
	n, ok := l.byKey[k]
	if !ok {
		return false
	}
	l.unlink(n)
	delete(l.byKey, k)
	l.release(n)
	return true
}

// Back returns the LRU key. ok is false if the list is empty.
func (l *List[K]) Back() (k K, ok bool) {
	if l.Len() == 0 {
		return k, false
	}
	return l.tail.prev.key, true
}

// Front returns the MRU key. ok is false if the list is empty.
func (l *List[K]) Front() (k K, ok bool) {
	if l.Len() == 0 {
		return k, false
	}
	return l.head.next.key, true
}

// PopBack removes and returns the LRU key. ok is false if the list is
// empty.
func (l *List[K]) PopBack() (k K, ok bool) {
	k, ok = l.Back()
	if ok {
		l.Remove(k)
	}
	return k, ok
}

// Each calls fn for every key from MRU to LRU. fn must not mutate the
// list. Iteration stops early if fn returns false.
func (l *List[K]) Each(fn func(K) bool) {
	for n := l.head.next; n != l.tail; n = n.next {
		if !fn(n.key) {
			return
		}
	}
}

// Keys returns all keys from MRU to LRU in a fresh slice.
func (l *List[K]) Keys() []K {
	out := make([]K, 0, l.Len())
	l.Each(func(k K) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Clear removes every key, retaining allocated capacity.
func (l *List[K]) Clear() {
	for n := l.head.next; n != l.tail; {
		next := n.next
		l.release(n)
		n = next
	}
	l.head.next = l.tail
	l.tail.prev = l.head
	clear(l.byKey)
}

func (l *List[K]) alloc(k K) *node[K] {
	if n := l.free; n != nil {
		l.free = n.next
		n.key = k
		n.next = nil
		return n
	}
	return &node[K]{key: k}
}

func (l *List[K]) release(n *node[K]) {
	var zero K
	n.key = zero
	n.prev = nil
	n.next = l.free
	l.free = n
}

func (l *List[K]) linkFront(n *node[K]) {
	n.prev = l.head
	n.next = l.head.next
	l.head.next.prev = n
	l.head.next = n
}

func (l *List[K]) linkBack(n *node[K]) {
	n.next = l.tail
	n.prev = l.tail.prev
	l.tail.prev.next = n
	l.tail.prev = n
}

func (l *List[K]) unlink(n *node[K]) {
	n.prev.next = n.next
	n.next.prev = n.prev
}
