package lrulist

import (
	"fmt"
	"math"
)

// UintID constrains keys usable with Dense: unsigned 64-bit identifier
// types such as model.Item and model.Block.
type UintID interface{ ~uint64 }

// Order is the recency-ordering contract shared by List and Dense. The
// front is the MRU end; the back is the LRU end. Policies program against
// Order so that bounded-universe configurations can swap in the
// allocation-free Dense implementation without any behavioural change —
// the two implementations are differentially tested for identical
// eviction order.
type Order[K comparable] interface {
	Len() int
	Contains(k K) bool
	PushFront(k K) bool
	PushBack(k K) bool
	MoveToFront(k K) bool
	Remove(k K) bool
	Back() (K, bool)
	Front() (K, bool)
	PopBack() (K, bool)
	Each(fn func(K) bool)
	Keys() []K
	Clear()
}

var (
	_ Order[uint64] = (*List[uint64])(nil)
	_ Order[uint64] = (*Dense[uint64])(nil)
)

// Dense slots 0 and 1 are the head and tail sentinels; key k lives at
// slot k+2. A slot is absent exactly when its next link is 0 (no live
// node ever points at the head), so a zeroed link array is an empty list.
const (
	denseHead      = 0
	denseTail      = 1
	denseSentinels = 2
)

// denseLink is one doubly-linked-list node, addressed by slot index.
type denseLink struct{ prev, next int32 }

// Dense is a slice-backed intrusive LRU order over a bounded key universe
// [0, universe). It provides the same operations and ordering semantics
// as List but stores the linked list in two flat int32 arrays indexed by
// key, so the promote/evict path touches no map and never allocates.
//
// Keys must be < universe; operations on larger keys panic. Memory is
// 8 bytes per universe slot, so Dense suits the dense integer ID spaces
// produced by workload generators and trace files, not sparse universes.
type Dense[K UintID] struct {
	links []denseLink // slot = key + 2; sentinels at 0, 1
	count int
}

// MaxDenseUniverse is the largest key universe NewDense accepts. Beyond
// this, slot indices would overflow int32 (and the footprint would be
// unreasonable anyway); callers fall back to the generic List.
const MaxDenseUniverse = math.MaxInt32 - denseSentinels

// NewDense returns an empty dense order over keys [0, universe).
// It panics if universe is negative or exceeds MaxDenseUniverse.
func NewDense[K UintID](universe int) *Dense[K] {
	if universe < 0 || universe > MaxDenseUniverse {
		panic(fmt.Sprintf("lrulist: dense universe %d outside [0, %d]", universe, MaxDenseUniverse))
	}
	d := &Dense[K]{links: make([]denseLink, universe+denseSentinels)}
	d.links[denseHead].next = denseTail
	d.links[denseTail].prev = denseHead
	return d
}

// Universe returns the configured key bound.
func (d *Dense[K]) Universe() int { return len(d.links) - denseSentinels }

// slot maps a key to its link index, panicking on out-of-universe keys.
// The panic lives in a separate no-inline helper so slot — and the
// Contains/MoveToFront callers that embed it — stays within the
// compiler's inlining budget; keeping these calls direct and inlined is
// worth ~20% of the batched serving path.
//
//gclint:hotpath
func (d *Dense[K]) slot(k K) int32 {
	s := uint64(k) + denseSentinels
	if s >= uint64(len(d.links)) {
		d.badKey(k)
	}
	return int32(s)
}

//go:noinline
func (d *Dense[K]) badKey(k K) {
	panic(fmt.Sprintf("lrulist: key %d outside dense universe %d", uint64(k), d.Universe()))
}

// Len returns the number of keys in the list.
func (d *Dense[K]) Len() int { return d.count }

// Contains reports whether k is in the list.
//
//gclint:hotpath
func (d *Dense[K]) Contains(k K) bool { return d.links[d.slot(k)].next != 0 }

// PushFront inserts k at the MRU position. If k is already present it is
// promoted instead. It returns true if k was newly inserted.
//
//gclint:hotpath
func (d *Dense[K]) PushFront(k K) bool {
	s := d.slot(k)
	if d.links[s].next != 0 {
		d.unlink(s)
		d.linkFront(s)
		return false
	}
	d.linkFront(s)
	d.count++
	return true
}

// PushBack inserts k at the LRU position. If k is already present it is
// demoted to the LRU position. It returns true if k was newly inserted.
//
//gclint:hotpath
func (d *Dense[K]) PushBack(k K) bool {
	s := d.slot(k)
	if d.links[s].next != 0 {
		d.unlink(s)
		d.linkBack(s)
		return false
	}
	d.linkBack(s)
	d.count++
	return true
}

// MoveToFront promotes k to the MRU position. It reports whether k was
// present.
//
//gclint:hotpath
func (d *Dense[K]) MoveToFront(k K) bool {
	s := d.slot(k)
	if d.links[s].next == 0 {
		return false
	}
	d.unlink(s)
	d.linkFront(s)
	return true
}

// Remove deletes k and reports whether it was present.
//
//gclint:hotpath
func (d *Dense[K]) Remove(k K) bool {
	s := d.slot(k)
	if d.links[s].next == 0 {
		return false
	}
	d.unlink(s)
	d.links[s] = denseLink{}
	d.count--
	return true
}

// Back returns the LRU key. ok is false if the list is empty.
//
//gclint:hotpath
func (d *Dense[K]) Back() (k K, ok bool) {
	if d.count == 0 {
		return k, false
	}
	return K(d.links[denseTail].prev - denseSentinels), true
}

// Front returns the MRU key. ok is false if the list is empty.
//
//gclint:hotpath
func (d *Dense[K]) Front() (k K, ok bool) {
	if d.count == 0 {
		return k, false
	}
	return K(d.links[denseHead].next - denseSentinels), true
}

// PopBack removes and returns the LRU key. ok is false if the list is
// empty.
//
//gclint:hotpath
func (d *Dense[K]) PopBack() (k K, ok bool) {
	if d.count == 0 {
		return k, false
	}
	s := d.links[denseTail].prev
	d.unlink(s)
	d.links[s] = denseLink{}
	d.count--
	return K(s - denseSentinels), true
}

// Each calls fn for every key from MRU to LRU. fn must not mutate the
// list. Iteration stops early if fn returns false.
func (d *Dense[K]) Each(fn func(K) bool) {
	for s := d.links[denseHead].next; s != denseTail; s = d.links[s].next {
		if !fn(K(s - denseSentinels)) {
			return
		}
	}
}

// Keys returns all keys from MRU to LRU in a fresh slice.
func (d *Dense[K]) Keys() []K {
	out := make([]K, 0, d.count)
	d.Each(func(k K) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Clear removes every key. It walks only the occupied slots, so clearing
// is O(Len), not O(universe).
func (d *Dense[K]) Clear() {
	for s := d.links[denseHead].next; s != denseTail; {
		next := d.links[s].next
		d.links[s] = denseLink{}
		s = next
	}
	d.links[denseHead].next = denseTail
	d.links[denseTail].prev = denseHead
	d.count = 0
}

//gclint:hotpath
func (d *Dense[K]) linkFront(s int32) {
	first := d.links[denseHead].next
	d.links[s] = denseLink{prev: denseHead, next: first}
	d.links[first].prev = s
	d.links[denseHead].next = s
}

//gclint:hotpath
func (d *Dense[K]) linkBack(s int32) {
	last := d.links[denseTail].prev
	d.links[s] = denseLink{prev: last, next: denseTail}
	d.links[last].next = s
	d.links[denseTail].prev = s
}

//gclint:hotpath
func (d *Dense[K]) unlink(s int32) {
	l := d.links[s]
	d.links[l.prev].next = l.next
	d.links[l.next].prev = l.prev
}
