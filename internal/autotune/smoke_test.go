package autotune

import (
	"testing"

	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/opt"
	"gccache/internal/scenario"
	"gccache/internal/trace"
)

// loadScenarioTrace materializes a corpus scenario at its pinned seed.
func loadScenarioTrace(t *testing.T, path string) trace.Trace {
	t.Helper()
	prog, info, err := scenario.Load(path)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	seed := scenario.ResolveSeed(info, 0, false)
	tr, err := scenario.Trace(prog, seed)
	if err != nil {
		t.Fatalf("materialize %s: %v", path, err)
	}
	return tr
}

// TestAutotuneSmokeDrift is the §5.3 closed-loop acceptance check (the
// `make autotune-smoke` gate): on the drifting-hot-set scenario, a
// tuner starting from the offline-worst candidate split must fire at
// least one live resize and land the run within 10% of the miss ratio
// of the offline-optimal *fixed* split — the regret bound the
// EXPERIMENTS.md table reports across the corpus.
func TestAutotuneSmokeDrift(t *testing.T) {
	const (
		k = 512
		B = 64
	)
	tr := loadScenarioTrace(t, "../../scenarios/drift.gcs")
	g := model.NewFixed(B)
	universe := tr.Universe()

	tn, err := New(Config{K: k, B: B, Universe: universe})
	if err != nil {
		t.Fatal(err)
	}
	offBest, offAll := opt.BestIBLPSplit(tr, g, k, tn.Candidates())

	// Start from the offline-worst candidate: the tuner must climb out.
	worst := offAll[0]
	for _, ev := range offAll[1:] {
		if ev.Misses > worst.Misses {
			worst = ev
		}
	}
	if worst.ItemLayer == offBest.ItemLayer {
		t.Fatalf("degenerate sweep: every split scores %d misses", offBest.Misses)
	}
	t.Logf("offline sweep: best i=%d ratio=%.4f, worst i=%d ratio=%.4f",
		offBest.ItemLayer, offBest.MissRatio, worst.ItemLayer, worst.MissRatio)

	live := core.NewIBLPBounded(worst.ItemLayer, k-worst.ItemLayer, g, universe)
	st := Drive(live, tn, tr, 0)
	s := tn.State()
	t.Logf("autotuned: ratio=%.4f resizes=%d final split=%d (formula=%d, working set=%d)",
		st.MissRatio(), s.Resizes, live.ItemLayerTarget(), s.Formula, s.WorkingSet)

	if s.Resizes < 1 {
		t.Fatalf("no resize fired from the offline-worst split i=%d", worst.ItemLayer)
	}
	if limit := offBest.MissRatio * 1.10; st.MissRatio() > limit {
		t.Fatalf("autotuned miss ratio %.4f exceeds 110%% of offline best %.4f (limit %.4f)",
			st.MissRatio(), offBest.MissRatio, limit)
	}
	// The final resting split must be competitive too, not just the
	// time-averaged run: its offline score stays within the same bound.
	finalScore := int64(-1)
	for _, ev := range offAll {
		if ev.ItemLayer == live.ItemLayerTarget() {
			finalScore = ev.Misses
		}
	}
	if finalScore < 0 {
		t.Fatalf("final split %d is not on the candidate grid", live.ItemLayerTarget())
	}
	if limit := float64(offBest.Misses) * 1.10; float64(finalScore) > limit {
		t.Fatalf("final split %d scores %d offline misses, above 110%% of best %d",
			live.ItemLayerTarget(), finalScore, offBest.Misses)
	}
}
