package autotune

import (
	"math/rand"
	"testing"

	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/trace"
)

// genMixedTrace builds a trace with a zipf-hot core, sequential scans,
// and uniform noise — enough variety to exercise item-layer hits,
// block-layer (spatial) hits, truncation, and full misses.
func genMixedTrace(rng *rand.Rand, universe, n, blockSize int) trace.Trace {
	z := rand.NewZipf(rng, 1.2, 1, uint64(universe/4))
	tr := make(trace.Trace, 0, n)
	for len(tr) < n {
		switch rng.Intn(10) {
		case 0: // sequential scan of a few blocks
			start := rng.Intn(universe)
			for j := 0; j < 3*blockSize && len(tr) < n; j++ {
				tr = append(tr, model.Item((start+j)%universe))
			}
		case 1: // uniform noise
			tr = append(tr, model.Item(rng.Intn(universe)))
		default: // hot set
			tr = append(tr, model.Item(z.Uint64()))
		}
	}
	return tr
}

// TestShadowMatchesIBLP pins the tentpole's correctness anchor: a
// Shadow at split (i, k−i) must agree with the real dense IBLP at the
// same split on every hit/miss decision. Any divergence would mean the
// controller picks splits using a policy that is not the one it tunes.
func TestShadowMatchesIBLP(t *testing.T) {
	const universe = 4096
	const k = 256
	for _, blockSize := range []int{1, 8, 64, 512} {
		for _, i := range []int{0, 1, k / 4, k / 2, k - 1, k} {
			g := model.NewFixed(blockSize)
			sh, err := NewShadow(i, k-i, g, universe)
			if err != nil {
				t.Fatalf("B=%d i=%d: NewShadow: %v", blockSize, i, err)
			}
			ref := core.NewIBLPBounded(i, k-i, g, universe)
			rng := rand.New(rand.NewSource(int64(blockSize*1000 + i)))
			tr := genMixedTrace(rng, universe, 30000, blockSize)
			for step, it := range tr {
				want := ref.Access(it).Hit
				got := sh.Access(it)
				if got != want {
					t.Fatalf("B=%d i=%d step %d (item %d): shadow hit=%v, IBLP hit=%v",
						blockSize, i, step, it, got, want)
				}
			}
			if sh.Hits()+sh.Misses() != int64(len(tr)) {
				t.Fatalf("B=%d i=%d: hits %d + misses %d != %d accesses",
					blockSize, i, sh.Hits(), sh.Misses(), len(tr))
			}
		}
	}
}

// TestShadowWindowCounters checks the per-window accounting the
// controller consumes: WindowMisses accumulates between resets and
// lifetime counters survive them.
func TestShadowWindowCounters(t *testing.T) {
	g := model.NewFixed(8)
	sh, err := NewShadow(16, 16, g, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sh.Access(model.Item(i * 8)) // one block each: all misses
	}
	if sh.WindowMisses() != 100 || sh.Misses() != 100 {
		t.Fatalf("after 100 misses: window=%d lifetime=%d", sh.WindowMisses(), sh.Misses())
	}
	sh.WindowReset()
	if sh.WindowMisses() != 0 || sh.Misses() != 100 {
		t.Fatalf("after reset: window=%d lifetime=%d", sh.WindowMisses(), sh.Misses())
	}
	sh.Access(model.Item(0)) // still resident from the block layer? miss either way counts once
	total := sh.Hits() + sh.Misses()
	if total != 101 {
		t.Fatalf("lifetime hits+misses = %d, want 101", total)
	}
	sh.Reset()
	if sh.Hits() != 0 || sh.Misses() != 0 || sh.WindowMisses() != 0 {
		t.Fatalf("Reset left counters: %d/%d/%d", sh.Hits(), sh.Misses(), sh.WindowMisses())
	}
	if sh.Access(model.Item(0)) {
		t.Fatal("hit on an item after Reset")
	}
}

// TestShadowRejectsBadConfig covers the constructor's error paths.
func TestShadowRejectsBadConfig(t *testing.T) {
	g := model.NewFixed(8)
	if _, err := NewShadow(-1, 8, g, 64); err == nil {
		t.Error("negative item layer accepted")
	}
	if _, err := NewShadow(0, 0, g, 64); err == nil {
		t.Error("zero total size accepted")
	}
	if _, err := NewShadow(4, 4, nil, 64); err == nil {
		t.Error("nil geometry accepted")
	}
	if _, err := NewShadow(4, 4, g, 0); err == nil {
		t.Error("zero universe accepted")
	}
}

// TestShadowZeroAlloc is the satellite-4 proof at the shadow level: a
// warmed shadow serves accesses at exactly 0 allocs/op.
func TestShadowZeroAlloc(t *testing.T) {
	const universe = 1 << 12
	g := model.NewFixed(16)
	sh, err := NewShadow(256, 256, g, universe)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < universe*2; i++ {
		sh.Access(model.Item(i % universe))
	}
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		sh.Access(model.Item(i % universe))
		i += 37
	}); avg != 0 {
		t.Errorf("shadow access: %.2f allocs/op, want 0", avg)
	}
}
