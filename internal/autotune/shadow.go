// Package autotune closes the §5.3 loop under live traffic: dense,
// allocation-free shadow caches — one per candidate IBLP layer split —
// run alongside the live policy off the same request stream, their
// per-window miss counts feed the paper's partition-sizing formulas,
// and a controller (Tuner) issues layer-resize moves to the live cache
// through cachesim.LayerResizable, with hysteresis and a resize-rate
// cap so transient phases cannot thrash the partition.
//
// The shadows simulate eviction decisions only: membership bitsets plus
// lrulist.Dense recency orders, no loaded/evicted accounting, no maps,
// no probe emission — so a full candidate grid costs a small constant
// factor over one live policy access and never allocates in steady
// state (pinned by TestShadowZeroAlloc and the hotalloc analyzer).
package autotune

import (
	"fmt"

	"gccache/internal/cachesim"
	"gccache/internal/lrulist"
	"gccache/internal/model"
)

// bitset is a packed membership set over a bounded ID universe — same
// shape as the core package's dense-path sets.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)>>6) }

//gclint:hotpath
func (b bitset) test(id uint64) bool { return b[id>>6]>>(id&63)&1 != 0 }

//gclint:hotpath
func (b bitset) set(id uint64) { b[id>>6] |= 1 << (id & 63) }

//gclint:hotpath
func (b bitset) unset(id uint64) { b[id>>6] &^= 1 << (id & 63) }

func (b bitset) reset() { clear(b) }

// Shadow is a ghost IBLP cache at one fixed (i, b) split: it tracks
// exactly the membership and recency state the real policy would hold,
// but serves no data and reports only hit/miss counts. Decision
// equivalence with core.IBLP at the same split is pinned by
// TestShadowMatchesIBLP.
type Shadow struct {
	itemSize  int // i
	blockSize int // b
	geo       model.Geometry

	items  *lrulist.Dense[model.Item]
	blocks *lrulist.Dense[model.Block]

	// inBlock is block-layer membership. The item layer needs no
	// separate bitset: hit detection is the recency list's MoveToFront,
	// and without loaded/evicted accounting nothing ever asks "is this
	// item resident somewhere".
	inBlock   bitset
	blockUsed int

	want    []model.Item // scratch: the item set being admitted
	trunc   []model.Item // scratch: truncated admission set
	scratch []model.Item // scratch: victim-block enumeration

	hits         int64
	misses       int64
	windowMisses int64 // misses since the last WindowReset
}

// NewShadow returns a shadow IBLP with item layer i and block layer b
// under g, over item IDs [0, universe) (expanded to whole blocks, see
// model.ItemUniverse). Unlike the real policy there is no generic
// fallback: shadows exist to be nearly free, so an unbounded universe
// is a configuration error.
func NewShadow(i, b int, g model.Geometry, universe int) (*Shadow, error) {
	if i < 0 || b < 0 || i+b < 1 {
		return nil, fmt.Errorf("autotune: shadow layer sizes i=%d b=%d invalid", i, b)
	}
	if g == nil {
		return nil, fmt.Errorf("autotune: shadow nil geometry")
	}
	universe = model.ItemUniverse(g, universe)
	blockUniverse := model.BlockUniverse(g, universe)
	if universe <= 0 || universe > cachesim.MaxBoundedUniverse ||
		blockUniverse <= 0 || blockUniverse > cachesim.MaxBoundedUniverse {
		return nil, fmt.Errorf("autotune: shadow universe %d outside bounded range (0, %d]",
			universe, cachesim.MaxBoundedUniverse)
	}
	return &Shadow{
		itemSize:  i,
		blockSize: b,
		geo:       g,
		items:     lrulist.NewDense[model.Item](universe),
		blocks:    lrulist.NewDense[model.Block](blockUniverse),
		inBlock:   newBitset(universe),
	}, nil
}

// ItemLayerSize returns i, the candidate split this shadow scores.
func (s *Shadow) ItemLayerSize() int { return s.itemSize }

// Hits and Misses return the lifetime counters.
func (s *Shadow) Hits() int64   { return s.hits }
func (s *Shadow) Misses() int64 { return s.misses }

// WindowMisses returns the misses since the last WindowReset.
func (s *Shadow) WindowMisses() int64 { return s.windowMisses }

// WindowReset zeroes the per-window miss counter.
func (s *Shadow) WindowReset() { s.windowMisses = 0 }

// Access simulates one request and reports whether it would have hit.
// It mirrors core.IBLP's dense access path with the serving concerns
// (loaded/evicted reconciliation, probes) stripped out.
//
//gclint:hotpath
func (s *Shadow) Access(it model.Item) bool {
	if s.items.MoveToFront(it) {
		s.hits++
		return true
	}
	blk := s.geo.BlockOf(it)
	if s.inBlock.test(uint64(it)) {
		s.blocks.MoveToFront(blk)
		s.admitItemLayer(it)
		s.hits++
		return true
	}
	s.admitItemLayer(it)
	s.admitBlockLayer(blk, it)
	s.misses++
	s.windowMisses++
	return false
}

//gclint:hotpath
func (s *Shadow) admitItemLayer(it model.Item) {
	if s.itemSize == 0 {
		return
	}
	s.items.PushFront(it)
	for s.items.Len() > s.itemSize {
		s.items.PopBack()
	}
}

//gclint:hotpath
func (s *Shadow) admitBlockLayer(blk model.Block, requested model.Item) {
	if s.blockSize == 0 {
		return
	}
	if s.blocks.Contains(blk) {
		// Only possible for a previously truncated copy; replace it.
		s.dropBlock(blk)
	}
	s.want = model.AppendItemsOf(s.geo, s.want[:0], blk)
	want := s.want
	if len(want) > s.blockSize {
		s.trunc = truncateAround(s.trunc, want, requested, s.blockSize)
		want = s.trunc
	}
	for s.blockUsed+len(want) > s.blockSize {
		victim, ok := s.blocks.Back()
		if !ok {
			break
		}
		s.dropBlock(victim)
	}
	if s.blockUsed+len(want) > s.blockSize {
		return // layer cannot hold this block at all
	}
	s.blocks.PushFront(blk)
	s.blockUsed += len(want)
	for _, x := range want {
		s.inBlock.set(uint64(x))
	}
}

// dropBlock evicts blk. It enumerates into scratch, not want: the
// admission path still holds an alias of want while it evicts victims,
// so the two scratches must stay distinct (exactly as in core.IBLP).
//
//gclint:hotpath
func (s *Shadow) dropBlock(blk model.Block) {
	s.scratch = model.AppendItemsOf(s.geo, s.scratch[:0], blk)
	for _, x := range s.scratch {
		if s.inBlock.test(uint64(x)) {
			s.inBlock.unset(uint64(x))
			s.blockUsed--
		}
	}
	s.blocks.Remove(blk)
}

// truncateAround fills dst with up to n items of all, guaranteed to
// include must — the same truncation rule as core.IBLP, so oversized
// blocks shadow identically.
func truncateAround(dst, all []model.Item, must model.Item, n int) []model.Item {
	dst = append(dst[:0], must)
	for _, x := range all {
		if len(dst) >= n {
			break
		}
		if x != must {
			dst = append(dst, x)
		}
	}
	return dst
}

// Reset empties the shadow and zeroes all counters.
func (s *Shadow) Reset() {
	s.items.Clear()
	s.blocks.Clear()
	s.inBlock.reset()
	s.blockUsed = 0
	s.hits, s.misses, s.windowMisses = 0, 0, 0
}
