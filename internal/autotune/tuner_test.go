package autotune

import (
	"math/rand"
	"strings"
	"testing"

	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/obs"
)

// fakeResizable records SetItemLayerTarget calls.
type fakeResizable struct {
	target int
	calls  int
}

func (f *fakeResizable) ItemLayerTarget() int     { return f.target }
func (f *fakeResizable) SetItemLayerTarget(i int) { f.target = i; f.calls++ }

// feedRequests pushes n policy-view request events for the cyclic item
// range [0, span) into t.
func feedRequests(t *Tuner, n, span int) {
	for i := 0; i < n; i++ {
		t.Observe(obs.Event{Kind: obs.EvHitItemLayer, Item: model.Item(i % span)})
	}
}

// newTestTuner builds a two-candidate tuner where the workload of
// feedRequests(_, n, 48) makes i=64 (pure item cache) a runaway winner
// over i=32: with B=1 there is no spatial locality to reward the block
// layer, so 48 cycling items fit a 64-slot LRU entirely (48 cold misses
// in the first window, none after) but thrash both 32-slot halves of
// the split (96 misses every window).
func newTestTuner(t *testing.T, patience, minInterval int) *Tuner {
	t.Helper()
	tn, err := New(Config{
		K: 64, B: 1, Universe: 512, Window: 96,
		Candidates:  []int{32, 64},
		Patience:    patience,
		MinInterval: minInterval,
	})
	if err != nil {
		t.Fatal(err)
	}
	tn.SetLiveTarget(32)
	return tn
}

// TestTunerProposesAfterPatience pins the hysteresis contract: a
// challenger that wins by MinGain must keep winning for Patience
// consecutive windows before a proposal appears, and Apply enacts it
// exactly once.
func TestTunerProposesAfterPatience(t *testing.T) {
	tn := newTestTuner(t, 2, 1)
	feedRequests(tn, 96, 48) // window 1
	s := tn.State()
	if s.Windows != 1 || s.Streak != 1 {
		t.Fatalf("after window 1: windows=%d streak=%d, want 1/1", s.Windows, s.Streak)
	}
	if _, ok := tn.Pending(); ok {
		t.Fatal("proposal after a single winning window with Patience=2")
	}
	feedRequests(tn, 96, 48) // window 2
	p, ok := tn.Pending()
	if !ok || p != 64 {
		t.Fatalf("after window 2: pending=%d ok=%v, want 64", p, ok)
	}

	rz := &fakeResizable{target: 32}
	target, applied := tn.Apply(rz)
	if !applied || target != 64 || rz.target != 64 || rz.calls != 1 {
		t.Fatalf("Apply: target=%d applied=%v rz=%+v", target, applied, rz)
	}
	if _, again := tn.Apply(rz); again {
		t.Fatal("second Apply re-fired a consumed proposal")
	}
	if got := tn.Resizes(); got != 1 {
		t.Fatalf("Resizes=%d, want 1", got)
	}
	// The live target moved to the winner, so the same traffic must not
	// generate further proposals.
	feedRequests(tn, 96*4, 48)
	if _, ok := tn.Pending(); ok {
		t.Fatal("proposal to resize to the already-live target")
	}
}

// TestTunerRateCap pins the resize-rate cap: after an applied resize,
// no new proposal may appear until MinInterval further windows have
// elapsed, even with Patience long since satisfied. The cap spaces
// consecutive moves — it does not delay the first one, which fires as
// soon as Patience allows.
func TestTunerRateCap(t *testing.T) {
	tn := newTestTuner(t, 1, 3)
	rz := &fakeResizable{target: 32}

	// First move: Patience=1, so one winning window suffices.
	feedRequests(tn, 96, 48)
	if p, ok := tn.Pending(); !ok || p != 64 {
		t.Fatalf("first proposal: pending=%d ok=%v, want 64", p, ok)
	}
	if _, applied := tn.Apply(rz); !applied {
		t.Fatal("first Apply did not fire")
	}

	// An operator moves the split back; the tuner re-detects the win but
	// must now respect the spacing.
	tn.SetLiveTarget(32)
	for w := 1; w <= 2; w++ {
		feedRequests(tn, 96, 48)
		if _, ok := tn.Pending(); ok {
			t.Fatalf("proposal %d windows after an applied resize with MinInterval=3", w)
		}
	}
	feedRequests(tn, 96, 48)
	if p, ok := tn.Pending(); !ok || p != 64 {
		t.Fatalf("after the interval: pending=%d ok=%v, want 64", p, ok)
	}
}

// TestTunerHoldsWithoutGain pins the dead-band: when the challenger's
// advantage is inside MinGain the incumbent is kept indefinitely.
func TestTunerHoldsWithoutGain(t *testing.T) {
	tn, err := New(Config{
		K: 64, B: 1, Universe: 1 << 14, Window: 128,
		Candidates:  []int{32, 64},
		Patience:    1,
		MinInterval: 1,
		MinGain:     0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	tn.SetLiveTarget(64)
	// Fresh items every access: with B=1 every candidate misses every
	// time — zero gain for anyone, so never a proposal.
	for i := 0; i < 128*6; i++ {
		tn.Observe(obs.Event{Kind: obs.EvHit, Item: model.Item(i)})
	}
	if _, ok := tn.Pending(); ok {
		t.Fatal("proposal despite zero miss-count gain")
	}
	if s := tn.State(); s.Streak != 0 {
		t.Fatalf("streak=%d under tied candidates, want 0", s.Streak)
	}
}

// TestTunerTiebreakPrefersFormula: when candidates tie on window
// misses, the winner must be the one nearest the §5.3 formula target.
// With B=1 the formula always says i=k (the block layer can never pay
// off), so the all-miss workload's winner is the largest item layer.
func TestTunerTiebreakPrefersFormula(t *testing.T) {
	tn, err := New(Config{
		K: 64, B: 1, Universe: 1 << 14, Window: 128,
		Candidates: []int{0, 16, 32, 48, 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		tn.Observe(obs.Event{Kind: obs.EvHit, Item: model.Item(i)})
	}
	s := tn.State()
	if s.Formula != 64 {
		t.Fatalf("formula target = %d with B=1, want k=64", s.Formula)
	}
	if s.Winner != 64 {
		t.Fatalf("tied winner = %d, want formula side 64", s.Winner)
	}
}

// TestTunerTracksLiveFromResizeEvents: EvLayerResize events — whoever
// causes them — update the incumbent the comparisons run against.
func TestTunerTracksLiveFromResizeEvents(t *testing.T) {
	tn := newTestTuner(t, 2, 1)
	tn.Observe(obs.Event{Kind: obs.EvLayerResize, N: 64})
	if s := tn.State(); s.Live != 64 {
		t.Fatalf("live=%d after EvLayerResize(64)", s.Live)
	}
	// i=64 is already live, so its winning streak must not propose.
	feedRequests(tn, 96*4, 48)
	if _, ok := tn.Pending(); ok {
		t.Fatal("proposal to move to the already-live split")
	}
}

// TestTunerSkipsOutOfUniverse: items beyond the configured universe
// are counted and ignored — they must not panic the dense shadows or
// advance the window clock.
func TestTunerSkipsOutOfUniverse(t *testing.T) {
	tn, err := New(Config{K: 16, B: 4, Universe: 64, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tn.Observe(obs.Event{Kind: obs.EvHit, Item: model.Item(1 << 20)})
	}
	s := tn.State()
	if s.Skipped != 100 || s.Requests != 0 || s.Windows != 0 {
		t.Fatalf("skipped=%d requests=%d windows=%d, want 100/0/0", s.Skipped, s.Requests, s.Windows)
	}
}

// TestTunerApplyReentrancy: Apply calls SetItemLayerTarget on a live
// cache whose probe is this same tuner, so the resulting EvLayerResize
// re-enters Observe. This must not deadlock and must leave the tuner's
// live target in sync.
func TestTunerApplyReentrancy(t *testing.T) {
	const universe = 1 << 12
	g := model.NewFixed(1)
	live := core.NewIBLPBounded(32, 32, g, universe)
	tn := newTestTuner(t, 1, 1)
	tn.SetLiveTarget(32)
	live.SetProbe(tn)
	defer live.SetProbe(nil)

	for i := 0; i < 96*2; i++ {
		live.Access(model.Item(i % 48))
	}
	if p, ok := tn.Pending(); !ok || p != 64 {
		t.Fatalf("pending=%d ok=%v, want 64", p, ok)
	}
	target, applied := tn.Apply(live)
	if !applied || target != 64 {
		t.Fatalf("Apply: target=%d applied=%v", target, applied)
	}
	if got := live.ItemLayerTarget(); got != 64 {
		t.Fatalf("live cache target=%d after Apply", got)
	}
	if s := tn.State(); s.Live != 64 {
		t.Fatalf("tuner live=%d after Apply", s.Live)
	}
}

// TestTunerZeroAllocSteadyState is the satellite-4 proof at system
// level: a dense live cache with the tuner attached as its probe must
// serve accesses at 0 allocs/op — including the accesses that cross
// decision-window boundaries, so the whole endWindow step (formula,
// comparison, history ring) is covered.
func TestTunerZeroAllocSteadyState(t *testing.T) {
	const universe = 1 << 12
	g := model.NewFixed(16)
	live := core.NewIBLPEvenSplitBounded(512, g, universe)
	tn, err := New(Config{K: 512, B: 16, Universe: universe, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	tn.SetLiveTarget(live.ItemLayerTarget())
	live.SetProbe(tn)
	defer live.SetProbe(nil)
	for i := 0; i < universe*2; i++ {
		live.Access(model.Item(i % universe))
	}
	i := 0
	// 2000 runs with Window=64 crosses ~60 window boundaries (plus
	// history-ring wraps with History=32), incl. in the measured runs.
	if avg := testing.AllocsPerRun(2000, func() {
		live.Access(model.Item(i % universe))
		i += 37
	}); avg != 0 {
		t.Errorf("live access with tuner probe: %.2f allocs/op, want 0", avg)
	}
}

// TestTunerStateAndRendering sanity-checks the dashboard surface.
func TestTunerStateAndRendering(t *testing.T) {
	tn := newTestTuner(t, 2, 1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 96*5; i++ {
		tn.Observe(obs.Event{Kind: obs.EvHit, Item: model.Item(rng.Intn(400))})
	}
	s := tn.State()
	if s.Windows != 5 || len(s.Samples) != 5 {
		t.Fatalf("windows=%d samples=%d, want 5/5", s.Windows, len(s.Samples))
	}
	for _, smp := range s.Samples {
		if len(smp.Misses) != len(s.Candidates) {
			t.Fatalf("sample misses len %d, candidates %d", len(smp.Misses), len(s.Candidates))
		}
	}
	var sb strings.Builder
	if _, err := tn.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"autotune:", "item layer", "live"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteTo output missing %q:\n%s", want, out)
		}
	}
}

// TestTunerConfigValidation covers New's error paths.
func TestTunerConfigValidation(t *testing.T) {
	if _, err := New(Config{K: 0, B: 8, Universe: 64}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := New(Config{K: 64, B: 0, Universe: 64}); err == nil {
		t.Error("B=0 accepted")
	}
	if _, err := New(Config{K: 64, B: 8, Universe: 0}); err == nil {
		t.Error("Universe=0 accepted")
	}
	if _, err := New(Config{K: 64, B: 8, Universe: 64, Candidates: []int{7, 7}}); err == nil {
		t.Error("single distinct candidate accepted")
	}
}
