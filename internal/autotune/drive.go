package autotune

import (
	"gccache/internal/cachesim"
	"gccache/internal/trace"
)

// DefaultApplyStride is how many accesses Drive replays between polls
// of the tuner's proposal buffer. Polling is a mutex acquire and an int
// compare, so the stride matters only for reaction latency; a fraction
// of the decision window keeps resizes near their window boundary.
const DefaultApplyStride = 256

// Drive replays tr cold through c with t attached as the policy probe,
// polling t.Apply every applyEvery accesses (DefaultApplyStride if
// applyEvery < 1) so proposals become live resizes. It is the
// single-threaded serving loop in miniature — the same
// observe-then-poll shape gcserve's replay uses — and what the
// convergence tests and gcsim's -autotune mode run.
//
// c must implement cachesim.Instrumented (to attach the tuner) and
// cachesim.LayerResizable (to be resized); Drive panics otherwise, as
// misconfiguration here silently measures nothing.
func Drive(c cachesim.Cache, t *Tuner, tr trace.Trace, applyEvery int) cachesim.Stats {
	if applyEvery < 1 {
		applyEvery = DefaultApplyStride
	}
	inst := c.(cachesim.Instrumented)
	rz := c.(cachesim.LayerResizable)
	t.SetLiveTarget(rz.ItemLayerTarget())
	inst.SetProbe(t)
	defer inst.SetProbe(nil)
	c.Reset()
	rec := cachesim.NewRecorderBounded(c.Name(), t.Universe())
	for i, it := range tr {
		rec.Observe(it, c.Access(it))
		if (i+1)%applyEvery == 0 {
			t.Apply(rz)
		}
	}
	return rec.Stats()
}
