package autotune

import (
	"fmt"
	"io"
	"math"
	"sync"

	"gccache/internal/bounds"
	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/obs"
	"gccache/internal/render"
)

// Config parameterizes a Tuner. Zero values get the documented
// defaults; K, B, and Universe are required.
type Config struct {
	// K is the live cache's total size (item layer + block layer).
	K int
	// B is the block size fed to the §5.3 formulas. It should match the
	// geometry's block size for fixed geometries.
	B int
	// Geometry maps items to blocks for the shadows. Defaults to
	// model.NewFixed(B).
	Geometry model.Geometry
	// Universe bounds the item IDs the tuner will see. Required: the
	// shadows are dense and the working-set estimator is a flat array.
	// Out-of-universe items are counted (State().Skipped) and ignored.
	Universe int
	// Window is the decision interval in requests (default 4096): each
	// window ends with one compare-and-maybe-propose step.
	Window int
	// Candidates are the item-layer sizes to shadow. Default: a nine
	// point grid over [0, K] at K/8 spacing. Values are clamped to
	// [0, K] and deduplicated.
	Candidates []int
	// MinGain is the relative window-miss improvement a challenger must
	// show over the incumbent split before it counts toward a proposal
	// (default 0.05). This is the hysteresis dead-band: within it the
	// incumbent is kept even if technically second-best.
	MinGain float64
	// TieTol is the relative band above the per-window minimum within
	// which candidates count as tied (default 0.02). Ties break toward
	// the §5.3 formula target, so the paper's prior decides whenever
	// the data cannot.
	TieTol float64
	// Patience is how many consecutive windows the same challenger must
	// win (by MinGain) before a resize is proposed (default 2).
	Patience int
	// MinInterval is the resize-rate cap: at least this many windows
	// must pass between applied resizes (default 4).
	MinInterval int
	// History is how many per-window samples State() retains for the
	// dashboard (default 32).
	History int
}

func (c *Config) setDefaults() error {
	if c.K < 1 {
		return fmt.Errorf("autotune: K=%d, need >= 1", c.K)
	}
	if c.B < 1 {
		return fmt.Errorf("autotune: B=%d, need >= 1", c.B)
	}
	if c.Geometry == nil {
		c.Geometry = model.NewFixed(c.B)
	}
	if c.Window <= 0 {
		c.Window = 4096
	}
	if len(c.Candidates) == 0 {
		for j := 0; j <= 8; j++ {
			c.Candidates = append(c.Candidates, j*c.K/8)
		}
	}
	if c.MinGain <= 0 {
		c.MinGain = 0.05
	}
	if c.TieTol <= 0 {
		c.TieTol = 0.02
	}
	if c.Patience <= 0 {
		c.Patience = 2
	}
	if c.MinInterval <= 0 {
		c.MinInterval = 4
	}
	if c.History <= 0 {
		c.History = 32
	}
	return nil
}

// CandidateState is one shadow's standing in a State snapshot.
type CandidateState struct {
	Target int // item-layer size this shadow runs
	// LastWindowMisses is the shadow's miss count over the most recent
	// completed window (0 before the first window completes).
	LastWindowMisses int64
	Hits             int64 // lifetime
	Misses           int64 // lifetime
}

// WindowSample is one completed decision window in a State snapshot.
type WindowSample struct {
	Window     int64 // 1-based window ordinal
	WorkingSet int   // distinct in-universe items seen in the window
	Formula    int   // §5.3 target from the working-set estimate
	Winner     int   // empirical winner after the formula tiebreak
	Live       int   // live target at window end (-1 if unknown)
	// Misses holds each candidate's window miss count, index-aligned
	// with State.Candidates.
	Misses []int64
}

// State is a consistent snapshot of the controller for dashboards and
// tests.
type State struct {
	Window     int   // configured decision interval (requests)
	Windows    int64 // completed windows
	Requests   int64 // in-universe requests observed
	Skipped    int64 // out-of-universe requests ignored
	Live       int   // live item-layer target (-1 if not yet known)
	Formula    int   // last §5.3 formula target
	WorkingSet int   // last per-window working-set estimate
	Winner     int   // last empirical winner
	Streak     int   // consecutive windows the current challenger has won
	Pending    int   // proposed target awaiting Apply (-1 if none)
	SinceApply int   // windows since the last applied resize
	Resizes    int64 // resizes applied through this tuner
	Candidates []CandidateState
	Samples    []WindowSample // oldest to newest, up to Config.History
}

// Tuner is the §5.3 closed-loop controller. Attached as an obs.Probe to
// the live policy, it clocks on policy-view request events (exactly one
// per access, in both flat and cluster modes), feeds every request to
// the candidate shadows, and at each window boundary compares their
// miss counts: the winner — with the §5.3 formula target breaking
// near-ties — must beat the incumbent split by MinGain for Patience
// consecutive windows before a resize is proposed, and proposals are
// spaced at least MinInterval windows apart. Proposals are buffered,
// never pushed: obs.Probe forbids calling back into the emitting cache,
// so the serving loop polls Apply at a point where it holds the lock
// that serializes Access.
//
// Observe is safe for concurrent use (one mutex; shadows are cheap), so
// a single Tuner can sit in a probe Multi anywhere the serving stack
// emits events.
type Tuner struct {
	mu  sync.Mutex
	cfg Config

	//gclint:guardedby mu
	shadows []*Shadow
	//gclint:guardedby mu
	candidates []int

	// Working-set estimator: epoch-stamped presence array. distinct is
	// the number of in-universe items first seen this window.
	//gclint:guardedby mu
	seen []uint32
	//gclint:guardedby mu
	epoch uint32
	//gclint:guardedby mu
	distinct int

	//gclint:guardedby mu
	width int64 // requests into the current window
	//gclint:guardedby mu
	windows int64
	//gclint:guardedby mu
	requests int64
	//gclint:guardedby mu
	skipped int64

	//gclint:guardedby mu
	live int // live target: last EvLayerResize / SetLiveTarget / Apply
	//gclint:guardedby mu
	streakIdx int // candidate index of the current challenger (-1 none)
	//gclint:guardedby mu
	streak int
	//gclint:guardedby mu
	pending int // proposed target (-1 none)
	//gclint:guardedby mu
	sinceApply int
	//gclint:guardedby mu
	resizes int64

	//gclint:guardedby mu
	lastFormula int
	//gclint:guardedby mu
	lastWS int
	//gclint:guardedby mu
	lastWinner int
	//gclint:guardedby mu
	lastMiss []int64 // per-candidate misses of the last completed window

	// History ring: hist holds the scalar sample fields, histMiss the
	// per-candidate misses as a flat [History][len(candidates)] block so
	// window rollover never allocates.
	//gclint:guardedby mu
	hist []WindowSample
	//gclint:guardedby mu
	histMiss []int64
	//gclint:guardedby mu
	histNext int
	//gclint:guardedby mu
	histLen int
}

var _ obs.Probe = (*Tuner)(nil)

// New returns a Tuner for the given configuration, with one shadow per
// candidate split.
func New(cfg Config) (*Tuner, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	universe := model.ItemUniverse(cfg.Geometry, cfg.Universe)
	if universe <= 0 {
		return nil, fmt.Errorf("autotune: universe %d, need > 0", cfg.Universe)
	}
	// Clamp, dedup, and sort the candidate grid.
	seen := map[int]bool{}
	var cands []int
	for _, i := range cfg.Candidates {
		if i < 0 {
			i = 0
		}
		if i > cfg.K {
			i = cfg.K
		}
		if !seen[i] {
			seen[i] = true
			cands = append(cands, i)
		}
	}
	for a := 1; a < len(cands); a++ { // insertion sort: tiny, no deps
		for b := a; b > 0 && cands[b] < cands[b-1]; b-- {
			cands[b], cands[b-1] = cands[b-1], cands[b]
		}
	}
	if len(cands) < 2 {
		return nil, fmt.Errorf("autotune: %d distinct candidates, need >= 2", len(cands))
	}
	t := &Tuner{
		cfg:        cfg,
		candidates: cands,
		seen:       make([]uint32, universe),
		epoch:      1,
		live:       -1,
		streakIdx:  -1,
		pending:    -1,
		// The rate cap spaces consecutive *applied* resizes; a fresh
		// tuner facing a clearly bad split may move as soon as Patience
		// is satisfied, so it starts with the interval already elapsed.
		sinceApply: cfg.MinInterval,
		lastMiss:   make([]int64, len(cands)),
		hist:       make([]WindowSample, cfg.History),
		histMiss:   make([]int64, cfg.History*len(cands)),
	}
	for _, i := range cands {
		sh, err := NewShadow(i, cfg.K-i, cfg.Geometry, cfg.Universe)
		if err != nil {
			return nil, err
		}
		t.shadows = append(t.shadows, sh)
	}
	return t, nil
}

// Candidates returns the deduplicated, sorted candidate grid.
func (t *Tuner) Candidates() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, len(t.candidates))
	copy(out, t.candidates)
	return out
}

// Universe returns the dense item-universe bound the tuner was built
// with (the length of its presence array).
func (t *Tuner) Universe() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.seen)
}

// SetLiveTarget seeds the incumbent split when the tuner is attached to
// an already-configured cache. Without it the incumbent is unknown and
// the first window's winner qualifies unconditionally.
func (t *Tuner) SetLiveTarget(i int) {
	t.mu.Lock()
	t.live = i
	t.mu.Unlock()
}

// Observe implements obs.Probe. Request-serving events drive the
// shadows and the window clock; EvLayerResize keeps the incumbent in
// sync (including moves made by others, e.g. AdaptiveIBLP's own votes).
func (t *Tuner) Observe(e obs.Event) {
	if e.Kind != obs.EvLayerResize && !e.Kind.IsPolicyRequest() {
		return
	}
	t.mu.Lock()
	roll := false
	switch {
	case e.Kind == obs.EvLayerResize:
		t.live = int(e.N)
	case uint64(e.Item) >= uint64(len(t.seen)):
		t.skipped++
	default:
		for _, sh := range t.shadows {
			sh.Access(e.Item)
		}
		if t.seen[e.Item] != t.epoch {
			t.seen[e.Item] = t.epoch
			t.distinct++
		}
		t.requests++
		t.width++
		roll = t.width >= int64(t.cfg.Window)
	}
	t.mu.Unlock()
	if roll {
		t.endWindow()
	}
}

// endWindow runs one decision step. It takes t.mu itself and re-checks
// the width so a racing Observe cannot roll the same window twice. It
// must not allocate: the steady-state zero-alloc proof spans window
// boundaries.
func (t *Tuner) endWindow() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.width < int64(t.cfg.Window) {
		return
	}
	t.windows++
	t.sinceApply++

	// §5.3 prior: the per-window working set stands in for h, the
	// optimal comparison cache the formula assumes known.
	t.lastWS = t.distinct
	h := float64(t.distinct)
	if h < 1 {
		h = 1
	}
	if h > float64(t.cfg.K) {
		h = float64(t.cfg.K)
	}
	fi := bounds.OptimalItemLayer(float64(t.cfg.K), h, float64(t.cfg.B))
	formula := t.cfg.K
	if !math.IsNaN(fi) {
		formula = int(math.Round(fi))
		if formula < 0 {
			formula = 0
		}
		if formula > t.cfg.K {
			formula = t.cfg.K
		}
	}
	t.lastFormula = formula

	// Empirical winner with formula tiebreak: among candidates within
	// TieTol of the window's minimum misses, prefer the one nearest the
	// formula target.
	minM := t.shadows[0].WindowMisses()
	for _, sh := range t.shadows[1:] {
		if m := sh.WindowMisses(); m < minM {
			minM = m
		}
	}
	band := minM + int64(float64(minM)*t.cfg.TieTol)
	best, bestDist := -1, 0
	for idx, sh := range t.shadows {
		if sh.WindowMisses() > band {
			continue
		}
		d := t.candidates[idx] - formula
		if d < 0 {
			d = -d
		}
		if best < 0 || d < bestDist {
			best, bestDist = idx, d
		}
	}
	winner := t.candidates[best]
	winnerM := t.shadows[best].WindowMisses()
	t.lastWinner = winner

	// Incumbent: the shadow nearest the live split (exact when live is
	// on the grid). Unknown live makes the challenger qualify outright.
	incM := int64(-1)
	if t.live >= 0 {
		nearest, nd := -1, 0
		for idx, c := range t.candidates {
			d := c - t.live
			if d < 0 {
				d = -d
			}
			if nearest < 0 || d < nd {
				nearest, nd = idx, d
			}
		}
		incM = t.shadows[nearest].WindowMisses()
	}

	improves := winner != t.live &&
		(incM < 0 || float64(incM-winnerM) > t.cfg.MinGain*float64(maxInt64(incM, 1)))
	if improves {
		if t.streakIdx == best {
			t.streak++
		} else {
			t.streakIdx, t.streak = best, 1
		}
	} else {
		t.streakIdx, t.streak = -1, 0
	}
	if t.streak >= t.cfg.Patience && t.sinceApply >= t.cfg.MinInterval {
		t.pending = winner
	}

	// Record the window into the history ring and the last-window view.
	nc := len(t.candidates)
	row := t.histMiss[t.histNext*nc : (t.histNext+1)*nc]
	for idx, sh := range t.shadows {
		row[idx] = sh.WindowMisses()
		t.lastMiss[idx] = sh.WindowMisses()
	}
	t.hist[t.histNext] = WindowSample{
		Window:     t.windows,
		WorkingSet: t.lastWS,
		Formula:    formula,
		Winner:     winner,
		Live:       t.live,
		Misses:     row,
	}
	t.histNext = (t.histNext + 1) % len(t.hist)
	if t.histLen < len(t.hist) {
		t.histLen++
	}

	// Roll the window.
	for _, sh := range t.shadows {
		sh.WindowReset()
	}
	t.width = 0
	t.distinct = 0
	t.epoch++
	if t.epoch == 0 { // wrapped: the stale stamps are ambiguous again
		clear(t.seen)
		t.epoch = 1
	}
}

// Pending returns the proposed target, if any, without consuming it.
func (t *Tuner) Pending() (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pending, t.pending >= 0
}

// Apply enacts a pending proposal on the live cache and reports what it
// did. The caller must hold whatever lock serializes rz.Access —
// SetItemLayerTarget is not concurrency-safe against it. Apply itself
// releases the tuner's mutex before touching rz, so the resize's own
// EvLayerResize event can re-enter Observe without deadlock.
func (t *Tuner) Apply(rz cachesim.LayerResizable) (int, bool) {
	t.mu.Lock()
	target := t.pending
	apply := target >= 0 && target != t.live
	if target >= 0 {
		t.pending = -1
	}
	if apply {
		t.live = target
		t.sinceApply = 0
		t.streakIdx, t.streak = -1, 0
		t.resizes++
	}
	t.mu.Unlock()
	if !apply {
		return 0, false
	}
	rz.SetItemLayerTarget(target)
	return target, true
}

// Resizes returns how many resizes this tuner has applied.
func (t *Tuner) Resizes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.resizes
}

// State returns a consistent snapshot. It allocates; call it from paid
// paths (dashboards, tests) only.
func (t *Tuner) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := State{
		Window:     t.cfg.Window,
		Windows:    t.windows,
		Requests:   t.requests,
		Skipped:    t.skipped,
		Live:       t.live,
		Formula:    t.lastFormula,
		WorkingSet: t.lastWS,
		Winner:     t.lastWinner,
		Streak:     t.streak,
		Pending:    t.pending,
		SinceApply: t.sinceApply,
		Resizes:    t.resizes,
	}
	for idx, sh := range t.shadows {
		s.Candidates = append(s.Candidates, CandidateState{
			Target:           t.candidates[idx],
			LastWindowMisses: t.lastMiss[idx],
			Hits:             sh.Hits(),
			Misses:           sh.Misses(),
		})
	}
	nc := len(t.candidates)
	for j := 0; j < t.histLen; j++ {
		i := (t.histNext - t.histLen + j + len(t.hist)) % len(t.hist)
		ws := t.hist[i]
		ws.Misses = append([]int64(nil), t.histMiss[i*nc:(i+1)*nc]...)
		s.Samples = append(s.Samples, ws)
	}
	return s
}

// Table renders the shadow standings for the dashboard.
func (t *Tuner) Table() *render.Table {
	s := t.State()
	tb := &render.Table{
		Title:   "autotune shadow splits (per-window misses)",
		Headers: []string{"item layer", "last window", "lifetime misses", "lifetime hits", "role"},
	}
	for _, c := range s.Candidates {
		role := ""
		if c.Target == s.Winner {
			role = "winner"
		}
		if s.Live >= 0 && c.Target == s.Live {
			if role != "" {
				role += "+"
			}
			role += "live"
		}
		tb.AddRow(c.Target, c.LastWindowMisses, c.Misses, c.Hits, role)
	}
	return tb
}

// WriteTo renders the controller state as aligned text.
func (t *Tuner) WriteTo(w io.Writer) (int64, error) {
	s := t.State()
	pending := "none"
	if s.Pending >= 0 {
		pending = fmt.Sprintf("%d", s.Pending)
	}
	live := "unknown"
	if s.Live >= 0 {
		live = fmt.Sprintf("%d", s.Live)
	}
	fmt.Fprintf(w, "autotune: windows=%d (W=%d) requests=%d skipped=%d\n",
		s.Windows, s.Window, s.Requests, s.Skipped)
	fmt.Fprintf(w, "live=%s formula=%d (working set %d) winner=%d streak=%d pending=%s resizes=%d\n",
		live, s.Formula, s.WorkingSet, s.Winner, s.Streak, pending, s.Resizes)
	return 0, t.Table().WriteText(w)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
