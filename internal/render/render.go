// Package render formats experiment output as aligned text tables, CSV,
// and ASCII line charts — the presentation layer for every table and
// figure the repository regenerates from the paper.
package render

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = FormatFloat(x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals,
// small magnitudes with 4 significant digits, infinities as ∞.
func FormatFloat(x float64) string {
	switch {
	case math.IsInf(x, 1):
		return "inf"
	case math.IsInf(x, -1):
		return "-inf"
	case math.IsNaN(x):
		return "-"
	case x == math.Trunc(x) && math.Abs(x) < 1e15:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 0.01:
		return fmt.Sprintf("%.4g", x)
	default:
		return fmt.Sprintf("%.3e", x)
	}
}

// WriteText writes the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table as CSV (no quoting needed for our numeric
// content; commas in cells are replaced by semicolons defensively).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	cells := make([]string, 0, len(t.Headers))
	for _, h := range t.Headers {
		cells = append(cells, clean(h))
	}
	b.WriteString(strings.Join(cells, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, clean(c))
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is one named line of a chart.
type Series struct {
	Name string
	Y    []float64
}

// Chart is an ASCII line chart over a shared X axis — used to eyeball the
// Figure 3 / Figure 6 curves in terminal output. Y values are plotted on
// a log10 scale when LogY is set (competitive ratios span decades).
type Chart struct {
	Title  string
	XName  string
	X      []float64
	Series []Series
	Width  int
	Height int
	LogY   bool
}

// WriteText renders the chart.
func (c *Chart) WriteText(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	tr := func(y float64) float64 {
		if c.LogY {
			if y <= 0 {
				return math.NaN()
			}
			return math.Log10(y)
		}
		return y
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, y := range s.Y {
			v := tr(y)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", c.Title)
	}
	if math.IsInf(lo, 1) || lo == hi {
		b.WriteString("(no plottable data)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	n := len(c.X)
	for si, s := range c.Series {
		mark := marks[si%len(marks)]
		for xi := 0; xi < n && xi < len(s.Y); xi++ {
			v := tr(s.Y[xi])
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			col := 0
			if n > 1 {
				col = xi * (width - 1) / (n - 1)
			}
			row := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = mark
			}
		}
	}
	toY := func(v float64) float64 {
		if c.LogY {
			return math.Pow(10, v)
		}
		return v
	}
	for r, line := range grid {
		label := ""
		switch r {
		case 0:
			label = FormatFloat(toY(hi))
		case height - 1:
			label = FormatFloat(toY(lo))
		case (height - 1) / 2:
			label = FormatFloat(toY((hi + lo) / 2))
		}
		fmt.Fprintf(&b, "%10s |%s\n", label, line)
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-20s ... %20s (%s)\n", "",
		FormatFloat(c.X[0]), FormatFloat(c.X[len(c.X)-1]), c.XName)
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%10s  [%c] %s\n", "", marks[si%len(marks)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
