package render

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{2, "2"},
		{2.5, "2.5"},
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
		{math.NaN(), "-"},
		{0.0001234, "1.234e-04"},
		{123456, "123456"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableText(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tb.AddRow("alpha", 1.0)
	tb.AddRow("b", math.Inf(1))
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "name", "alpha", "inf"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Alignment: every data line has the two columns separated.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("want 5 lines, got %d", len(lines))
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a,b", "c"}}
	tb.AddRow("x,y", 2.0)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a;b,c\n") {
		t.Errorf("header line: %q", out)
	}
	if !strings.Contains(out, "x;y,2") {
		t.Errorf("row line: %q", out)
	}
}

func TestChartRendersAllSeries(t *testing.T) {
	ch := &Chart{
		Title: "test",
		XName: "x",
		X:     []float64{1, 2, 3, 4},
		Series: []Series{
			{Name: "up", Y: []float64{1, 2, 3, 4}},
			{Name: "down", Y: []float64{4, 3, 2, 1}},
		},
		Width: 40, Height: 10,
	}
	var buf bytes.Buffer
	if err := ch.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "[*] up") || !strings.Contains(out, "[+] down") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("marks missing:\n%s", out)
	}
}

func TestChartLogScaleAndDegenerate(t *testing.T) {
	ch := &Chart{
		X:      []float64{1, 10},
		Series: []Series{{Name: "s", Y: []float64{1, 1000}}},
		LogY:   true,
	}
	var buf bytes.Buffer
	if err := ch.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1000") {
		t.Errorf("log chart missing max label:\n%s", buf.String())
	}
	// Degenerate: constant series.
	ch2 := &Chart{X: []float64{1, 2}, Series: []Series{{Name: "c", Y: []float64{5, 5}}}}
	buf.Reset()
	if err := ch2.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no plottable data") {
		t.Errorf("degenerate chart output:\n%s", buf.String())
	}
}
