package scenario

import (
	"bytes"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/policy"
	"gccache/internal/trace"
)

// allCombinators is a program exercising every combinator in the
// registry — the determinism, reset, and zero-allocation tests run it
// so no node kind escapes coverage. A registry-completeness assertion
// below keeps it honest when combinators are added.
const allCombinators = `
seed 11
let hot = zipf(n=256, s=1.3)
let cold = uniform(n=65536, base=256)
let scans = loop(take(seq(start=0, step=1), n=512))
emit take(
  concat(
    take(diurnal(hot, cold, period=200), n=300),
    take(ramp(hot, cold, over=250), n=300),
    take(
      interleave(
        3: mix(0.7: hot, 0.3: cold),
        1: splice(hot, scans, every=40, n=16),
      ),
      n=300,
    ),
    take(drift(blocks(cycle(n=64, start=8), B=8, run=3.5), every=50, step=8), n=300),
    scatter(offset(spread(take(stride(n=32, step=7), n=300), gap=4), by=5), n=8192),
  ),
  n=1500,
)
`

// TestAllCombinatorsCovered fails when a registry combinator is missing
// from the allCombinators test program, so new combinators cannot dodge
// the determinism/reset/alloc tests.
func TestAllCombinatorsCovered(t *testing.T) {
	p, _, err := parseAndCheck(t, allCombinators)
	_ = err
	used := make(map[string]bool)
	var walk func(e Expr)
	walk = func(e Expr) {
		if call, ok := e.(*Call); ok {
			used[call.Name] = true
			for _, a := range call.Args {
				walk(a.Value)
			}
		}
	}
	for _, st := range p.Stmts {
		switch st := st.(type) {
		case *LetStmt:
			walk(st.Expr)
		case *EmitStmt:
			walk(st.Expr)
		}
	}
	for _, name := range Combinators() {
		if !used[name] {
			t.Errorf("combinator %q is not exercised by the allCombinators test program", name)
		}
	}
}

func parseAndCheck(t *testing.T, src string) (*Program, *Info, error) {
	t.Helper()
	p, err := Parse("test.gcs", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	info, err := Check(p)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return p, info, nil
}

func drain(t *testing.T, s *Stream) []model.Item {
	t.Helper()
	out := make([]model.Item, 0, s.Len())
	for s.Next() {
		out = append(out, s.Item())
	}
	return out
}

// TestCompileDeterministic: same program + same seed → identical
// sequence; different seed → different sequence (for any program with a
// stochastic node).
func TestCompileDeterministic(t *testing.T) {
	p, info, _ := parseAndCheck(t, allCombinators)
	s1, err := Compile(p, 7)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	s2, err := Compile(p, 7)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	a, b := drain(t, s1), drain(t, s2)
	if int64(len(a)) != info.Length {
		t.Fatalf("emitted %d requests, static length %d", len(a), info.Length)
	}
	if !itemsEqual(a, b) {
		t.Fatal("same seed produced different sequences")
	}
	s3, err := Compile(p, 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if itemsEqual(a, drain(t, s3)) {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestStreamReset: Reset rewinds to a byte-identical replay, including
// Emitted bookkeeping.
func TestStreamReset(t *testing.T) {
	p, _, _ := parseAndCheck(t, allCombinators)
	s, err := Compile(p, 3)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	first := drain(t, s)
	if s.Emitted() != int64(len(first)) {
		t.Fatalf("Emitted %d after drain of %d", s.Emitted(), len(first))
	}
	s.Reset()
	if s.Emitted() != 0 {
		t.Fatalf("Emitted %d after Reset", s.Emitted())
	}
	if !itemsEqual(first, drain(t, s)) {
		t.Fatal("Reset replay differs from first pass")
	}
}

// TestFormatRoundTripCompiles: the canonical printer's output is itself
// a valid program that compiles to the identical sequence.
func TestFormatRoundTripCompiles(t *testing.T) {
	p, _, _ := parseAndCheck(t, allCombinators)
	p2, err := Parse("roundtrip.gcs", Format(p))
	if err != nil {
		t.Fatalf("reparse of Format output: %v", err)
	}
	s1, err := Compile(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Compile(p2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !itemsEqual(drain(t, s1), drain(t, s2)) {
		t.Fatal("Format round-trip changed the compiled sequence")
	}
}

// TestTraceMatchesStream: the materializer and the streaming path
// deliver the same requests.
func TestTraceMatchesStream(t *testing.T) {
	p, _, _ := parseAndCheck(t, allCombinators)
	tr, err := Trace(p, 7)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	s, err := Compile(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !itemsEqual([]model.Item(tr), drain(t, s)) {
		t.Fatal("Trace materialization differs from streaming replay")
	}
}

// TestDifferentialSliceVsStream replays one compiled scenario through
// the slice-based simulator and the streaming simulator and requires
// identical cache statistics — the end-to-end guarantee that the
// scenario path changes how traces are delivered, not what they say.
func TestDifferentialSliceVsStream(t *testing.T) {
	p, _, _ := parseAndCheck(t, allCombinators)
	tr, err := Trace(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	g := model.NewFixed(8)
	caches := map[string]func() cachesim.Cache{
		"itemlru":  func() cachesim.Cache { return policy.NewItemLRU(64) },
		"blocklru": func() cachesim.Cache { return policy.NewBlockLRU(8, g) },
	}
	for name, mk := range caches {
		sliceStats := cachesim.RunCold(mk(), tr)
		s, err := Compile(p, 7)
		if err != nil {
			t.Fatal(err)
		}
		streamStats, err := cachesim.RunColdStream(mk(), s)
		if err != nil {
			t.Fatalf("%s: RunColdStream: %v", name, err)
		}
		if sliceStats != streamStats {
			t.Errorf("%s: slice stats %+v != stream stats %+v", name, sliceStats, streamStats)
		}
	}
}

// TestWriteSourceMatchesWrite: the streaming encoder produces the exact
// bytes of the slice encoder, and the scanner round-trips them.
func TestWriteSourceMatchesWrite(t *testing.T) {
	p, _, _ := parseAndCheck(t, allCombinators)
	tr, err := Trace(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	var viaSlice, viaSource bytes.Buffer
	if err := tr.Write(&viaSlice); err != nil {
		t.Fatal(err)
	}
	s, err := Compile(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSource(&viaSource, s, uint64(s.Len())); err != nil {
		t.Fatalf("WriteSource: %v", err)
	}
	if !bytes.Equal(viaSlice.Bytes(), viaSource.Bytes()) {
		t.Fatal("WriteSource bytes differ from Trace.Write bytes")
	}
	back, err := trace.Read(&viaSource)
	if err != nil {
		t.Fatalf("Read back: %v", err)
	}
	if !itemsEqual([]model.Item(tr), []model.Item(back)) {
		t.Fatal("decoded trace differs from original")
	}
}

// TestWriteSourceLengthMismatch: a wrong declared count is an error,
// not silent corruption.
func TestWriteSourceLengthMismatch(t *testing.T) {
	p, _, _ := parseAndCheck(t, "emit take(seq(), n=10)")
	s, err := Compile(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSource(&bytes.Buffer{}, s, 11); err == nil {
		t.Fatal("expected declared-length mismatch error")
	}
}

// TestStreamZeroAlloc: the emit path of a compiled scenario covering
// every node kind performs zero allocations per request at steady
// state — the property the hotalloctrans analyzer enforces statically
// and this test enforces dynamically.
func TestStreamZeroAlloc(t *testing.T) {
	p, _, _ := parseAndCheck(t, allCombinators)
	s, err := Compile(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sink model.Item
	// Warm up past any first-request initialization.
	for i := 0; i < 64 && s.Next(); i++ {
		sink = s.Item()
	}
	allocs := testing.AllocsPerRun(400, func() {
		if s.Next() {
			sink = s.Item()
		}
	})
	_ = sink
	if allocs != 0 {
		t.Errorf("emit path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestUniverse: the bounding pre-pass matches a manual scan of the
// materialized trace.
func TestUniverse(t *testing.T) {
	p, _, _ := parseAndCheck(t, allCombinators)
	u, err := Universe(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Trace(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := tr.Universe(); u != want {
		t.Errorf("Universe() = %d, trace says %d", u, want)
	}
	if u <= 0 {
		t.Errorf("Universe() = %d, want > 0", u)
	}
}

// TestScatterBoundsUniverse: scatter(…, n) must keep every emitted item
// inside [0, n) — the property that keeps dense bounded policies viable
// on hashed workloads.
func TestScatterBoundsUniverse(t *testing.T) {
	p, _, _ := parseAndCheck(t, "emit scatter(take(seq(), n=5000), n=1024)")
	s, err := Compile(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[model.Item]bool)
	for s.Next() {
		if s.Item() >= 1024 {
			t.Fatalf("scatter emitted %d outside [0, 1024)", s.Item())
		}
		seen[s.Item()] = true
	}
	// The multiplicative hash is a permutation of Z_n: 5000 sequential
	// inputs over a 1024 universe must cover every residue.
	if len(seen) != 1024 {
		t.Errorf("scatter covered %d of 1024 residues; not a permutation?", len(seen))
	}
}

// TestLetIsDefinitionNotSharedStream: two references to one binding
// must be independent copies — referencing `hot` twice yields the same
// sub-sequence from each, not an interleaving of one shared stream.
func TestLetIsDefinitionNotSharedStream(t *testing.T) {
	src := `
let base = take(cycle(n=16), n=10)
emit concat(base, base)
`
	p, info, _ := parseAndCheck(t, src)
	if info.Length != 20 {
		t.Fatalf("static length %d, want 20", info.Length)
	}
	s, err := Compile(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, s)
	for i := 0; i < 10; i++ {
		if got[i] != got[i+10] {
			t.Fatalf("second copy diverges at %d: %d vs %d — binding shared state", i, got[i], got[i+10])
		}
	}
}

// TestDescribe: the gcscn summary names the right facts.
func TestDescribe(t *testing.T) {
	p, info, _ := parseAndCheck(t, "seed 5\nlet a = zipf(n=64)\nemit take(a, n=100)")
	d := Describe(p, info)
	for _, want := range []string{"1 bindings", "100 requests", "seed 5", "take", "zipf"} {
		if !bytes.Contains([]byte(d), []byte(want)) {
			t.Errorf("Describe %q missing %q", d, want)
		}
	}
}

func itemsEqual(a, b []model.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
