package scenario

// Recursive-descent parser over the lexer's token stream. The grammar
// (EBNF, mirrored in docs/SCENARIOS.md):
//
//	program = { statement } ;
//	statement = "seed" number
//	          | "let" ident "=" expr
//	          | "emit" expr ;
//	expr    = call | ident | number ;
//	call    = ident "(" [ arg { "," arg } [ "," ] ] ")" ;
//	arg     = ident "=" expr          (named parameter)
//	        | number ":" expr         (weighted operand)
//	        | expr ;                  (positional operand)
//
// Comments run from '#' to end of line; newlines are insignificant
// (statements are keyword-delimited). Parsing is purely syntactic —
// name resolution, combinator signatures, and finiteness live in the
// validator (see validate.go) so errors carry the most specific
// position available.

type parser struct {
	file string
	lex  *lexer
	tok  token
	err  *Error
}

// Parse lexes and parses src into a Program. file names the source in
// error messages (conventionally the .gcs path). The result is
// syntactically well-formed but not yet validated: call Check before
// Compile, or use Load which does both.
func Parse(file, src string) (*Program, error) {
	p := &parser{file: file, lex: newLexer(file, src)}
	p.advance()
	prog := &Program{File: file}
	for p.err == nil && p.tok.kind != tokEOF {
		st := p.parseStmt()
		if p.err != nil {
			break
		}
		prog.Stmts = append(prog.Stmts, st)
	}
	if p.err != nil {
		return nil, p.err
	}
	if len(prog.Stmts) == 0 {
		return nil, errf(file, Pos{1, 1}, "empty scenario: expected seed, let, and emit statements")
	}
	return prog, nil
}

func (p *parser) advance() {
	p.tok = p.lex.next()
	if p.lex.err != nil && p.err == nil {
		p.err = p.lex.err
	}
}

func (p *parser) failf(pos Pos, format string, args ...any) {
	if p.err == nil {
		p.err = errf(p.file, pos, format, args...)
	}
}

// expect consumes a token of the given kind or records an error.
func (p *parser) expect(kind tokenKind, context string) token {
	t := p.tok
	if t.kind != kind {
		p.failf(t.pos, "expected %s %s, got %s", kind, context, t.describe())
		return t
	}
	p.advance()
	return t
}

func (p *parser) parseStmt() Stmt {
	t := p.tok
	if t.kind != tokIdent {
		p.failf(t.pos, "expected a statement (seed, let, or emit), got %s", t.describe())
		return nil
	}
	switch t.text {
	case "seed":
		p.advance()
		num := p.expect(tokNumber, "after seed")
		if p.err != nil {
			return nil
		}
		lit := Number{Pos: num.pos, Value: num.num}
		if !lit.IsInt() {
			p.failf(num.pos, "seed must be an integer, got %s", formatNumber(num.num))
			return nil
		}
		return &SeedStmt{Pos: t.pos, Seed: lit.Int()}
	case "let":
		p.advance()
		name := p.expect(tokIdent, "after let")
		if p.err != nil {
			return nil
		}
		if isKeyword(name.text) {
			p.failf(name.pos, "cannot bind the keyword %q", name.text)
			return nil
		}
		p.expect(tokAssign, "after the binding name")
		expr := p.parseExpr()
		if p.err != nil {
			return nil
		}
		return &LetStmt{Pos: t.pos, Name: name.text, Expr: expr}
	case "emit":
		p.advance()
		expr := p.parseExpr()
		if p.err != nil {
			return nil
		}
		return &EmitStmt{Pos: t.pos, Expr: expr}
	}
	p.failf(t.pos, "expected a statement (seed, let, or emit), got %s", t.describe())
	return nil
}

func isKeyword(s string) bool { return s == "seed" || s == "let" || s == "emit" }

func (p *parser) parseExpr() Expr {
	t := p.tok
	switch t.kind {
	case tokNumber:
		p.advance()
		return &Number{Pos: t.pos, Value: t.num}
	case tokIdent:
		if isKeyword(t.text) {
			p.failf(t.pos, "expected an expression, got the keyword %q", t.text)
			return nil
		}
		p.advance()
		if p.tok.kind == tokLparen {
			return p.parseCall(t)
		}
		return &Ref{Pos: t.pos, Name: t.text}
	}
	p.failf(t.pos, "expected an expression (a combinator call, a name, or a number), got %s", t.describe())
	return nil
}

// parseCall parses the argument list of name(...). The opening paren is
// the current token.
func (p *parser) parseCall(name token) Expr {
	call := &Call{Pos: name.pos, Name: name.text}
	p.expect(tokLparen, "to open the argument list")
	for p.err == nil && p.tok.kind != tokRparen {
		call.Args = append(call.Args, p.parseArg())
		if p.err != nil {
			return nil
		}
		if p.tok.kind == tokComma {
			p.advance() // also permits a trailing comma before ')'
			continue
		}
		break
	}
	p.expect(tokRparen, "to close the argument list")
	if p.err != nil {
		return nil
	}
	return call
}

func (p *parser) parseArg() Arg {
	t := p.tok
	// number ':' expr — weighted operand.
	if t.kind == tokNumber {
		p.advance()
		if p.tok.kind == tokColon {
			p.advance()
			val := p.parseExpr()
			return Arg{Pos: t.pos, Weight: &Number{Pos: t.pos, Value: t.num}, Value: val}
		}
		return Arg{Pos: t.pos, Value: &Number{Pos: t.pos, Value: t.num}}
	}
	// ident '=' expr — named parameter; otherwise positional expr.
	if t.kind == tokIdent && !isKeyword(t.text) {
		p.advance()
		switch p.tok.kind {
		case tokAssign:
			p.advance()
			val := p.parseExpr()
			return Arg{Pos: t.pos, Name: t.text, Value: val}
		case tokLparen:
			return Arg{Pos: t.pos, Value: p.parseCall(t)}
		default:
			return Arg{Pos: t.pos, Value: &Ref{Pos: t.pos, Name: t.text}}
		}
	}
	p.failf(t.pos, "expected an argument (name=value, weight: stream, or a stream), got %s", t.describe())
	return Arg{Pos: t.pos}
}
