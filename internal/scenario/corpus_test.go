package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScenarioCorpus is the corpus gate (run under -race by `make
// scenario-smoke`): every scenarios/*.gcs file must parse, validate,
// carry a documenting header comment, survive a canonical-format round
// trip, and compile + replay to exactly its static length with every
// item inside the universe the bounding pre-pass computed.
func TestScenarioCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*"+Ext))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 8 {
		t.Fatalf("corpus has %d scenarios, want at least 8", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Corpus files are documentation: they must open with a header
			// comment naming what they stress.
			text := string(raw)
			if !strings.HasPrefix(text, "# "+filepath.Base(path)) {
				t.Errorf("missing '# %s — …' header comment", filepath.Base(path))
			}
			header := 0
			for _, line := range strings.Split(text, "\n") {
				if strings.HasPrefix(line, "#") {
					header++
				}
			}
			if header < 5 {
				t.Errorf("header comment is %d lines; corpus files document the behavior and paper tie-in they stress", header)
			}

			prog, info, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if !info.HasSeed {
				t.Error("corpus scenarios carry an explicit seed statement for reproducibility")
			}

			// Canonical formatting must round-trip to the same sequence.
			p2, err := Parse(path, Format(prog))
			if err != nil {
				t.Fatalf("reparse of Format output: %v", err)
			}

			u, err := Universe(prog, info.Seed)
			if err != nil {
				t.Fatal(err)
			}
			s, err := Compile(prog, info.Seed)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := Compile(p2, info.Seed)
			if err != nil {
				t.Fatalf("compile of formatted copy: %v", err)
			}
			var n int64
			for s.Next() {
				if !s2.Next() || s2.Item() != s.Item() {
					t.Fatalf("formatted copy diverges at request %d", n)
				}
				if int(s.Item()) >= u {
					t.Fatalf("request %d: item %d outside computed universe %d", n, s.Item(), u)
				}
				n++
			}
			if s2.Next() {
				t.Fatal("formatted copy emits extra requests")
			}
			if n != info.Length {
				t.Errorf("replayed %d requests, static length says %d", n, info.Length)
			}
		})
	}
}
