package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// The lexer is hand-rolled over the raw source bytes: the token set is
// six punctuation marks, identifiers, and numbers, so a table-driven
// generator would cost more than it saves. Positions are tracked as
// 1-based (line, column) in bytes; '#' comments run to end of line and
// newlines are insignificant (statements are keyword-delimited).

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLparen
	tokRparen
	tokComma
	tokAssign
	tokColon
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of file"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLparen:
		return "'('"
	case tokRparen:
		return "')'"
	case tokComma:
		return "','"
	case tokAssign:
		return "'='"
	case tokColon:
		return "':'"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	pos  Pos
	text string  // identifier text
	num  float64 // number value, suffixes folded
}

// describe renders a token for error messages: kind for punctuation,
// kind plus spelling for identifiers and numbers.
func (t token) describe() string {
	switch t.kind {
	case tokIdent:
		return fmt.Sprintf("identifier %q", t.text)
	case tokNumber:
		return fmt.Sprintf("number %s", formatNumber(t.num))
	default:
		return t.kind.String()
	}
}

type lexer struct {
	file string
	src  string
	off  int
	line int
	col  int
	err  *Error
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (l *lexer) failf(pos Pos, format string, args ...any) {
	if l.err == nil {
		l.err = errf(l.file, pos, format, args...)
	}
}

// advance consumes one byte, maintaining the line/column counters.
func (l *lexer) advance() {
	if l.src[l.off] == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.off++
}

// skipSpace consumes whitespace and '#' comments.
func (l *lexer) skipSpace() {
	for l.off < len(l.src) {
		switch c := l.src[l.off]; {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token. After an error (or at end of input) it
// returns tokEOF forever; the parser surfaces l.err.
func (l *lexer) next() token {
	l.skipSpace()
	pos := Pos{l.line, l.col}
	if l.err != nil || l.off >= len(l.src) {
		return token{kind: tokEOF, pos: pos}
	}
	c := l.src[l.off]
	switch c {
	case '(':
		l.advance()
		return token{kind: tokLparen, pos: pos}
	case ')':
		l.advance()
		return token{kind: tokRparen, pos: pos}
	case ',':
		l.advance()
		return token{kind: tokComma, pos: pos}
	case '=':
		l.advance()
		return token{kind: tokAssign, pos: pos}
	case ':':
		l.advance()
		return token{kind: tokColon, pos: pos}
	}
	switch {
	case isIdentStart(c):
		return l.lexIdent(pos)
	case c >= '0' && c <= '9':
		return l.lexNumber(pos)
	}
	l.failf(pos, "unexpected character %q", string(rune(c)))
	return token{kind: tokEOF, pos: pos}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func (l *lexer) lexIdent(pos Pos) token {
	start := l.off
	for l.off < len(l.src) && isIdentPart(l.src[l.off]) {
		l.advance()
	}
	return token{kind: tokIdent, pos: pos, text: l.src[start:l.off]}
}

// lexNumber scans DIGITS [ '.' DIGITS ] [ 'k' | 'M' | 'G' ], with '_'
// allowed between digits (1_000_000). There is no sign (item addresses
// and parameters are nonnegative) and no exponent syntax.
func (l *lexer) lexNumber(pos Pos) token {
	start := l.off
	digits := func() bool {
		n := 0
		for l.off < len(l.src) {
			c := l.src[l.off]
			if c >= '0' && c <= '9' {
				n++
				l.advance()
				continue
			}
			// Underscores only between digits: 1_0 ok, 1_ or _1 not.
			if c == '_' && n > 0 && l.off+1 < len(l.src) &&
				l.src[l.off+1] >= '0' && l.src[l.off+1] <= '9' {
				l.advance()
				continue
			}
			break
		}
		return n > 0
	}
	digits()
	if l.off < len(l.src) && l.src[l.off] == '.' {
		l.advance()
		if !digits() {
			l.failf(pos, "malformed number %q: digits must follow '.'", l.src[start:l.off])
			return token{kind: tokEOF, pos: pos}
		}
	}
	text := strings.ReplaceAll(l.src[start:l.off], "_", "")
	mult := 1.0
	if l.off < len(l.src) {
		switch l.src[l.off] {
		case 'k':
			mult = 1e3
			l.advance()
		case 'M':
			mult = 1e6
			l.advance()
		case 'G':
			mult = 1e9
			l.advance()
		}
	}
	// A trailing identifier character means a malformed token like 123abc
	// or 1kx — catch it here so the error points at the number, not at a
	// confusing identifier that follows it.
	if l.off < len(l.src) && (isIdentPart(l.src[l.off]) || l.src[l.off] == '.') {
		end := l.off
		for end < len(l.src) && (isIdentPart(l.src[end]) || l.src[end] == '.') {
			end++
		}
		l.failf(pos, "malformed number %q", l.src[start:end])
		return token{kind: tokEOF, pos: pos}
	}
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		l.failf(pos, "number %q out of range", l.src[start:l.off])
		return token{kind: tokEOF, pos: pos}
	}
	return token{kind: tokNumber, pos: pos, num: v * mult}
}
