package scenario

import "testing"

// FuzzScenarioParse feeds arbitrary bytes to the full front end. Two
// invariants: (1) parse + validate never panic — errors are fine, they
// are the product; (2) for programs that parse, the canonical printer
// is a fixpoint: parse → Format → parse → Format converges on the
// first Format output, so gcscn -fmt is idempotent.
func FuzzScenarioParse(f *testing.F) {
	seeds := []string{
		"",
		"emit take(seq(), n=10)",
		"seed 42\nlet hot = zipf(n=4096, s=1.2)\nemit take(hot, n=1M)",
		"emit take(mix(0.8: zipf(n=10), 0.2: seq()), n=10)",
		"emit take(interleave(3: seq(), 1: cycle(n=4)), n=12)",
		"# comment\nemit take(loop(take(seq(), n=3)), n=7,)",
		"emit concat(take(seq(), n=1_000), take(stride(n=8, step=3), n=2.5k))",
		"let x = $",
		"seed 99999999999999999999999999",
		"emit take(blocks(cycle(n=4), B=8, run=2.5), n=1.)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse("fuzz.gcs", src)
		if err != nil {
			return
		}
		// Validation must not panic either, whatever it concludes.
		_, _ = Check(p)

		once := Format(p)
		p2, err := Parse("fuzz.gcs", once)
		if err != nil {
			t.Fatalf("Format output failed to reparse: %v\ninput: %q\nformatted: %q", err, src, once)
		}
		if twice := Format(p2); twice != once {
			t.Fatalf("Format is not a fixpoint:\nonce:  %q\ntwice: %q", once, twice)
		}
	})
}
