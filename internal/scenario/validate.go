package scenario

import (
	"math"
	"strings"
)

// The validator turns a syntactically well-formed Program into a
// guaranteed-compilable one: every reference resolves to an earlier
// binding, every call matches its registry signature, every parameter
// is in range, and the emitted stream has a statically known finite
// length. Error messages carry the position of the most specific
// offending token; the full catalog lives in docs/SCENARIOS.md.

// Info is what validation learns about a program beyond "it is valid".
type Info struct {
	// Seed is the program's `seed` statement value; HasSeed reports
	// whether one was present (callers fall back to their own default
	// or a CLI flag when not).
	Seed    int64
	HasSeed bool
	// Length is the exact number of requests the scenario emits —
	// statically computable because emit must be finite and every
	// finite combinator has an exact length rule.
	Length int64
}

// maxLength caps the static length of any stream expression: beyond
// 2^53 requests the float64-derived parameters could not even count
// them, and no replay finishes anyway.
const maxLength = int64(1) << 53

// class is the statically computed length of an expression.
type class struct {
	finite bool
	n      int64 // exact length when finite
}

type checker struct {
	file string
	// bound maps binding name -> its computed class; bindings resolve
	// in order, so lookups only ever see earlier lets.
	bound map[string]class
	used  map[string]bool
	err   *Error
}

// Check validates p and returns its Info. The error is always a
// positioned *Error.
func Check(p *Program) (*Info, error) {
	c := &checker{
		file:  p.File,
		bound: make(map[string]class),
		used:  make(map[string]bool),
	}
	info := &Info{}
	var seedAt, emitAt *Pos
	for _, st := range p.Stmts {
		switch st := st.(type) {
		case *SeedStmt:
			if emitAt != nil {
				return nil, errf(p.File, st.Pos, "emit must be the last statement (emit at %s)", emitAt)
			}
			if seedAt != nil {
				return nil, errf(p.File, st.Pos, "duplicate seed statement (first at %s)", seedAt)
			}
			pos := st.Pos
			seedAt = &pos
			info.Seed, info.HasSeed = st.Seed, true
		case *LetStmt:
			if emitAt != nil {
				return nil, errf(p.File, st.Pos, "emit must be the last statement (emit at %s)", emitAt)
			}
			if _, dup := c.bound[st.Name]; dup {
				return nil, errf(p.File, st.Pos, "duplicate binding %q", st.Name)
			}
			if _, clash := lookup(st.Name); clash {
				return nil, errf(p.File, st.Pos, "binding %q shadows the combinator of the same name", st.Name)
			}
			cl := c.checkExpr(st.Expr)
			if c.err != nil {
				return nil, c.err
			}
			c.bound[st.Name] = cl
		case *EmitStmt:
			if emitAt != nil {
				return nil, errf(p.File, st.Pos, "multiple emit statements (first at %s)", emitAt)
			}
			pos := st.Pos
			emitAt = &pos
			cl := c.checkExpr(st.Expr)
			if c.err != nil {
				return nil, c.err
			}
			if !cl.finite {
				return nil, errf(p.File, st.Pos, "emitted stream must be finite — wrap it in take(…, n)")
			}
			info.Length = cl.n
		}
	}
	if emitAt == nil {
		last := p.Stmts[len(p.Stmts)-1].stmtPos()
		return nil, errf(p.File, last, "missing emit statement")
	}
	// Unused bindings are dead weight in a corpus meant to be read;
	// iterate the statement list (not the map) for deterministic order.
	for _, st := range p.Stmts {
		if let, ok := st.(*LetStmt); ok && !c.used[let.Name] {
			return nil, errf(p.File, let.Pos, "unused binding %q", let.Name)
		}
	}
	return info, nil
}

func (c *checker) failf(pos Pos, format string, args ...any) class {
	if c.err == nil {
		c.err = errf(c.file, pos, format, args...)
	}
	return class{}
}

// checkExpr validates a stream expression and returns its length class.
func (c *checker) checkExpr(e Expr) class {
	switch e := e.(type) {
	case *Number:
		return c.failf(e.Pos, "a number is not a stream (did you mean a combinator call?)")
	case *Ref:
		cl, ok := c.bound[e.Name]
		if !ok {
			if _, isComb := lookup(e.Name); isComb {
				return c.failf(e.Pos, "combinator %q needs an argument list: %s", e.Name, Signature(e.Name))
			}
			return c.failf(e.Pos, "undefined name %q (bindings must be defined before use)", e.Name)
		}
		c.used[e.Name] = true
		return cl
	case *Call:
		return c.checkCall(e)
	}
	return c.failf(Pos{1, 1}, "internal: unknown expression kind")
}

func (c *checker) checkCall(call *Call) class {
	spec, ok := lookup(call.Name)
	if !ok {
		return c.failf(call.Pos, "unknown combinator %q (known: %s)", call.Name, strings.Join(Combinators(), ", "))
	}

	// Split the argument list into operands, weights, and named
	// parameters, validating each form against the signature.
	var operands []class
	seen := make(map[string]bool)
	for _, a := range call.Args {
		switch {
		case a.Name != "":
			p := spec.paramNamed(a.Name)
			if p == nil {
				return c.failf(a.Pos, "unknown parameter %q of %s (signature: %s)", a.Name, call.Name, Signature(call.Name))
			}
			if seen[a.Name] {
				return c.failf(a.Pos, "duplicate parameter %q", a.Name)
			}
			seen[a.Name] = true
			num, isNum := a.Value.(*Number)
			if !isNum {
				return c.failf(a.Value.exprPos(), "parameter %q of %s expects a number", a.Name, call.Name)
			}
			if bad := checkParamValue(p, num); bad != "" {
				return c.failf(num.Pos, "parameter %s=%s of %s %s", a.Name, formatNumber(num.Value), call.Name, bad)
			}
		case a.Weight != nil:
			if spec.operands != weightedOperands {
				return c.failf(a.Pos, "%s does not take weighted operands (signature: %s)", call.Name, Signature(call.Name))
			}
			if spec.weightInt {
				if !a.Weight.IsInt() || a.Weight.Int() < 1 {
					return c.failf(a.Weight.Pos, "interleave counts must be integers ≥ 1, got %s", formatNumber(a.Weight.Value))
				}
			} else if !(a.Weight.Value > 0) || math.IsInf(a.Weight.Value, 1) {
				return c.failf(a.Weight.Pos, "mix weights must be > 0, got %s", formatNumber(a.Weight.Value))
			}
			operands = append(operands, c.checkExpr(a.Value))
		default:
			if spec.operands == weightedOperands {
				return c.failf(a.Pos, "%s operands need weights (signature: %s)", call.Name, Signature(call.Name))
			}
			operands = append(operands, c.checkExpr(a.Value))
		}
		if c.err != nil {
			return class{}
		}
	}

	// Required parameters must all be present.
	for i := range spec.params {
		p := &spec.params[i]
		if p.required && !seen[p.name] {
			return c.failf(call.Pos, "missing required parameter %q of %s (signature: %s)", p.name, call.Name, Signature(call.Name))
		}
	}

	// Operand arity.
	switch spec.operands {
	case noOperands:
		if len(operands) != 0 {
			return c.failf(call.Pos, "%s takes no stream operands (signature: %s)", call.Name, Signature(call.Name))
		}
	case oneOperand:
		if len(operands) != 1 {
			return c.failf(call.Pos, "%s takes exactly one stream operand, got %d", call.Name, len(operands))
		}
	case twoOperands:
		if len(operands) != 2 {
			return c.failf(call.Pos, "%s takes exactly two stream operands, got %d", call.Name, len(operands))
		}
	case variadicOperands, weightedOperands:
		if len(operands) < 2 {
			return c.failf(call.Pos, "%s takes at least two stream operands, got %d", call.Name, len(operands))
		}
	}

	// Length rule, which doubles as the finiteness constraint.
	switch spec.length {
	case lenInfinite:
		for i, op := range operands {
			if op.finite {
				return c.failf(operandPos(call, i), "%s requires infinite stream operands — wrap finite streams in loop(…)", call.Name)
			}
		}
		return class{finite: false}
	case lenSame:
		return operands[0]
	case lenTake:
		n := paramInt64(call, spec, "n")
		if operands[0].finite && operands[0].n < n {
			n = operands[0].n
		}
		return class{finite: true, n: n}
	case lenLoop:
		if !operands[0].finite {
			return c.failf(operandPos(call, 0), "loop requires a finite operand (it already repeats forever)")
		}
		return class{finite: false}
	case lenConcat:
		total := int64(0)
		for i, op := range operands {
			if !op.finite {
				if i != len(operands)-1 {
					return c.failf(operandPos(call, i), "only the last operand of concat may be infinite")
				}
				return class{finite: false}
			}
			total += op.n
			if total > maxLength {
				return c.failf(call.Pos, "concat result exceeds %d requests", maxLength)
			}
		}
		return class{finite: true, n: total}
	}
	return c.failf(call.Pos, "internal: unhandled length rule for %s", call.Name)
}

// operandPos returns the position of the i-th stream operand of call.
func operandPos(call *Call, i int) Pos {
	n := 0
	for _, a := range call.Args {
		if a.Name == "" {
			if n == i {
				return a.Pos
			}
			n++
		}
	}
	return call.Pos
}

// paramNamed returns the parameter spec named name, or nil.
func (c *combinator) paramNamed(name string) *param {
	for i := range c.params {
		if c.params[i].name == name {
			return &c.params[i]
		}
	}
	return nil
}

// checkParamValue validates a literal against a parameter spec,
// returning a non-empty complaint on violation.
func checkParamValue(p *param, num *Number) string {
	if p.kind == paramInt && !num.IsInt() {
		return "must be an integer"
	}
	if num.Value < p.min {
		return "is below the minimum " + formatNumber(p.min)
	}
	if num.Value > p.max {
		return "is above the maximum " + formatNumber(p.max)
	}
	return ""
}

// paramInt64 returns the value of an integer parameter, falling back to
// the registry default. Only valid after checkCall succeeded.
func paramInt64(call *Call, spec *combinator, name string) int64 {
	for _, a := range call.Args {
		if a.Name == name {
			return a.Value.(*Number).Int()
		}
	}
	p := spec.paramNamed(name)
	return int64(p.def)
}
