package scenario

import (
	"math"
	"math/bits"
	"math/rand"

	"gccache/internal/model"
)

// Every combinator compiles to a node: a resettable, allocation-free
// incremental stream. next() returns the next item or false on
// exhaustion; reset() restores the node (and its whole subtree) to its
// initial state, including reseeding any RNG, so two passes over the
// same node are byte-identical. The emit path — every next() below —
// is hotpath-annotated: a compiled scenario streams millions of
// requests through the replay engines and must stay off the allocator
// in steady state (TestStreamZeroAlloc pins it).

type node interface {
	next() (model.Item, bool)
	reset()
}

// --- generators -----------------------------------------------------

type seqNode struct {
	start, step, cur uint64
}

//gclint:hotpath
func (n *seqNode) next() (model.Item, bool) {
	v := n.cur
	n.cur += n.step
	return model.Item(v), true
}

func (n *seqNode) reset() { n.cur = n.start }

type cycleNode struct {
	n, start, i uint64
}

//gclint:hotpath
func (n *cycleNode) next() (model.Item, bool) {
	v := n.start + n.i
	n.i++
	if n.i == n.n {
		n.i = 0
	}
	return model.Item(v), true
}

func (n *cycleNode) reset() { n.i = 0 }

type strideNode struct {
	n, step, i uint64
}

//gclint:hotpath
func (n *strideNode) next() (model.Item, bool) {
	v := n.i * n.step
	n.i++
	if n.i == n.n {
		n.i = 0
	}
	return model.Item(v), true
}

func (n *strideNode) reset() { n.i = 0 }

type uniformNode struct {
	n    int64
	base uint64
	seed int64
	rng  *rand.Rand
}

//gclint:hotpath
func (n *uniformNode) next() (model.Item, bool) {
	return model.Item(n.base + uint64(n.rng.Int63n(n.n))), true
}

func (n *uniformNode) reset() { n.rng.Seed(n.seed) }

type zipfNode struct {
	base uint64
	seed int64
	rng  *rand.Rand
	z    *rand.Zipf
}

//gclint:hotpath
func (n *zipfNode) next() (model.Item, bool) {
	return model.Item(n.base + n.z.Uint64()), true
}

// reset reseeds the shared *rand.Rand; rand.Zipf itself holds only
// immutable precomputed parameters, so the draw stream restarts.
func (n *zipfNode) reset() { n.rng.Seed(n.seed) }

// --- transforms -----------------------------------------------------

type takeNode struct {
	src     node
	n, left int64
}

//gclint:hotpath
func (n *takeNode) next() (model.Item, bool) {
	if n.left <= 0 {
		return 0, false
	}
	v, ok := n.src.next()
	if !ok {
		n.left = 0
		return 0, false
	}
	n.left--
	return v, true
}

func (n *takeNode) reset() {
	n.left = n.n
	n.src.reset()
}

type loopNode struct {
	src node
}

//gclint:hotpath
func (n *loopNode) next() (model.Item, bool) {
	v, ok := n.src.next()
	if !ok {
		n.src.reset()
		v, ok = n.src.next()
		if !ok {
			return 0, false // empty operand: stay exhausted rather than spin
		}
	}
	return v, true
}

func (n *loopNode) reset() { n.src.reset() }

type offsetNode struct {
	src node
	by  uint64
}

//gclint:hotpath
func (n *offsetNode) next() (model.Item, bool) {
	v, ok := n.src.next()
	return v + model.Item(n.by), ok
}

func (n *offsetNode) reset() { n.src.reset() }

type spreadNode struct {
	src node
	gap uint64
}

//gclint:hotpath
func (n *spreadNode) next() (model.Item, bool) {
	v, ok := n.src.next()
	return model.Item(uint64(v) * n.gap), ok
}

func (n *spreadNode) reset() { n.src.reset() }

// scatterMul is Knuth's multiplicative-hash prime: coprime to any n
// not a multiple of it, so v ↦ (v·scatterMul) mod n permutes [0,n).
const scatterMul = 2654435761

type scatterNode struct {
	src node
	n   uint64
}

//gclint:hotpath
func (n *scatterNode) next() (model.Item, bool) {
	v, ok := n.src.next()
	if !ok {
		return 0, false
	}
	// 128-bit multiply so (v mod n)·scatterMul cannot wrap before the
	// reduction (n may be as large as 2^53).
	hi, lo := bits.Mul64(uint64(v)%n.n, scatterMul)
	return model.Item(bits.Rem64(hi, lo, n.n)), true
}

func (n *scatterNode) reset() { n.src.reset() }

type blocksNode struct {
	src  node
	b    int64   // block size B
	p    float64 // geometric stop probability = 1/run
	seed int64
	rng  *rand.Rand

	remaining int64
	nextItem  uint64
}

//gclint:hotpath
func (n *blocksNode) next() (model.Item, bool) {
	if n.remaining == 0 {
		blk, ok := n.src.next()
		if !ok {
			return 0, false
		}
		run := int64(1)
		for run < n.b && n.rng.Float64() > n.p {
			run++
		}
		start := int64(0)
		if run < n.b {
			start = n.rng.Int63n(n.b - run + 1)
		}
		n.nextItem = uint64(blk)*uint64(n.b) + uint64(start)
		n.remaining = run
	}
	v := n.nextItem
	n.nextItem++
	n.remaining--
	return model.Item(v), true
}

func (n *blocksNode) reset() {
	n.remaining = 0
	n.rng.Seed(n.seed)
	n.src.reset()
}

type driftNode struct {
	src         node
	every, step uint64
	cnt, off    uint64
}

//gclint:hotpath
func (n *driftNode) next() (model.Item, bool) {
	v, ok := n.src.next()
	if !ok {
		return 0, false
	}
	out := v + model.Item(n.off)
	n.cnt++
	if n.cnt == n.every {
		n.cnt = 0
		n.off += n.step
	}
	return out, true
}

func (n *driftNode) reset() {
	n.cnt, n.off = 0, 0
	n.src.reset()
}

type spliceNode struct {
	src, burst node
	pBurst     float64 // 1/every
	n          int64   // burst length
	seed       int64
	rng        *rand.Rand
	left       int64
}

//gclint:hotpath
func (n *spliceNode) next() (model.Item, bool) {
	if n.left > 0 {
		n.left--
		return n.burst.next()
	}
	if n.rng.Float64() < n.pBurst {
		n.left = n.n - 1
		return n.burst.next()
	}
	return n.src.next()
}

func (n *spliceNode) reset() {
	n.left = 0
	n.rng.Seed(n.seed)
	n.src.reset()
	n.burst.reset()
}

// --- multi-source combinators ---------------------------------------

type mixNode struct {
	cum  []float64 // cumulative normalized weights, last = 1
	srcs []node
	seed int64
	rng  *rand.Rand
}

//gclint:hotpath
func (n *mixNode) next() (model.Item, bool) {
	r := n.rng.Float64()
	i := 0
	for i < len(n.cum)-1 && r >= n.cum[i] {
		i++
	}
	return n.srcs[i].next()
}

func (n *mixNode) reset() {
	n.rng.Seed(n.seed)
	for _, s := range n.srcs {
		s.reset()
	}
}

type interleaveNode struct {
	counts []int64
	srcs   []node
	cur    int
	left   int64
}

//gclint:hotpath
func (n *interleaveNode) next() (model.Item, bool) {
	v, ok := n.srcs[n.cur].next()
	n.left--
	if n.left == 0 {
		n.cur++
		if n.cur == len(n.srcs) {
			n.cur = 0
		}
		n.left = n.counts[n.cur]
	}
	return v, ok
}

func (n *interleaveNode) reset() {
	n.cur, n.left = 0, n.counts[0]
	for _, s := range n.srcs {
		s.reset()
	}
}

type concatNode struct {
	srcs []node
	idx  int
}

//gclint:hotpath
func (n *concatNode) next() (model.Item, bool) {
	for n.idx < len(n.srcs) {
		v, ok := n.srcs[n.idx].next()
		if ok {
			return v, true
		}
		n.idx++
	}
	return 0, false
}

func (n *concatNode) reset() {
	n.idx = 0
	for _, s := range n.srcs {
		s.reset()
	}
}

type rampNode struct {
	from, to node
	over     float64
	i        float64
	seed     int64
	rng      *rand.Rand
}

//gclint:hotpath
func (n *rampNode) next() (model.Item, bool) {
	p := n.i / n.over
	if p > 1 {
		p = 1
	}
	n.i++
	if n.rng.Float64() < p {
		return n.to.next()
	}
	return n.from.next()
}

func (n *rampNode) reset() {
	n.i = 0
	n.rng.Seed(n.seed)
	n.from.reset()
	n.to.reset()
}

type diurnalNode struct {
	day, night node
	period     float64
	i          float64
	seed       int64
	rng        *rand.Rand
}

//gclint:hotpath
func (n *diurnalNode) next() (model.Item, bool) {
	pDay := 0.5 * (1 + math.Cos(2*math.Pi*n.i/n.period))
	n.i++
	if n.i == n.period {
		n.i = 0 // keep the phase argument small over billion-request runs
	}
	if n.rng.Float64() < pDay {
		return n.day.next()
	}
	return n.night.next()
}

func (n *diurnalNode) reset() {
	n.i = 0
	n.rng.Seed(n.seed)
	n.day.reset()
	n.night.reset()
}
