package scenario

import (
	"strings"
	"testing"
)

// TestParseValid parses well-formed programs and asserts the canonical
// Format output, which pins both the accepted surface syntax (suffixes,
// underscores, trailing commas, comments, arbitrary whitespace) and the
// normalizer in one table.
func TestParseValid(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // canonical Format output
	}{
		{"minimal", "emit take(seq(), n=10)", "emit take(seq(), n=10)\n"},
		{"seed and let",
			"seed 42\nlet hot = zipf(n=4096)\nemit take(hot, n=100)",
			"seed 42\nlet hot = zipf(n=4096)\nemit take(hot, n=100)\n"},
		{"suffixes fold",
			"emit take(seq(), n=1M)",
			"emit take(seq(), n=1000000)\n"},
		{"underscores fold",
			"emit take(seq(), n=1_000_000)",
			"emit take(seq(), n=1000000)\n"},
		{"fractional suffix",
			"emit take(seq(), n=1.5k)",
			"emit take(seq(), n=1500)\n"},
		{"float stays float",
			"emit take(blocks(cycle(n=4), B=8, run=2.5), n=10)",
			"emit take(blocks(cycle(n=4), B=8, run=2.5), n=10)\n"},
		{"weighted args",
			"emit take(mix(0.8: zipf(n=10), 0.2: seq()), n=10)",
			"emit take(mix(0.8: zipf(n=10), 0.2: seq()), n=10)\n"},
		{"trailing comma",
			"emit take(seq(), n=10,)",
			"emit take(seq(), n=10)\n"},
		{"comments and whitespace",
			"# a scenario\nseed 7 # inline\n\n\temit   take( seq( ) ,\n\t n=10 )\n# trailing",
			"seed 7\nemit take(seq(), n=10)\n"},
		{"nested calls",
			"emit take(drift(loop(take(cycle(n=4), n=8)), every=100, step=4), n=50)",
			"emit take(drift(loop(take(cycle(n=4), n=8)), every=100, step=4), n=50)\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := Parse("test.gcs", c.src)
			if err != nil {
				t.Fatalf("Parse(%q): %v", c.src, err)
			}
			if got := Format(p); got != c.want {
				t.Errorf("Format mismatch:\n got: %q\nwant: %q", got, c.want)
			}
		})
	}
}

// TestParseErrors exercises every parse-time error production (lexer
// and parser) and asserts both the message and the exact 1-based
// line:col position — the coordinates are part of the UX contract the
// manual's error catalog documents.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantPos string // "line:col"
		wantMsg string // substring
	}{
		{"empty", "", "1:1", "empty scenario"},
		{"comment only", "# nothing here\n", "1:1", "empty scenario"},
		{"bad char", "let x = $", "1:9", `unexpected character "$"`},
		{"bad number trailing ident", "seed 123x", "1:6", `malformed number "123x"`},
		{"bad suffix", "emit take(seq(), n=1kx)", "1:20", `malformed number "1kx"`},
		{"dot needs digits", "emit take(seq(), n=1.)", "1:20", "digits must follow '.'"},
		{"double dot", "emit take(seq(), n=1.2.3)", "1:20", `malformed number "1.2.3"`},
		{"number out of range",
			"seed " + strings.Repeat("9", 400), "1:6", "out of range"},
		{"stray statement", "foo", "1:1", "expected a statement (seed, let, or emit)"},
		{"stray punctuation", ", emit x", "1:1", "expected a statement (seed, let, or emit), got ','"},
		{"let needs name", "let = seq()", "1:5", "expected identifier after let"},
		{"let needs assign", "let x seq()", "1:7", "expected '=' after the binding name"},
		{"let keyword name", "let emit = seq()", "1:5", `cannot bind the keyword "emit"`},
		{"seed needs number", "seed x", "1:6", "expected number after seed"},
		{"seed not integer", "seed 1.5", "1:6", "seed must be an integer"},
		{"emit needs expr", "emit", "1:5", "expected an expression"},
		{"emit keyword expr", "emit let", "1:6", `expected an expression, got the keyword "let"`},
		{"unclosed call", "emit take(seq(), n=4", "1:21", "expected ')' to close the argument list"},
		{"extra paren", "emit take(seq(), n=4))", "1:22", "expected a statement (seed, let, or emit), got ')'"},
		{"weight needs expr", "let a = mix(0.5:)", "1:17", "expected an expression"},
		{"arg needs value", "emit take(seq(), n=)", "1:20", "expected an expression"},
		{"bad arg", "emit take(=, n=4)", "1:11", "expected an argument"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("test.gcs", c.src)
			assertScenarioError(t, err, c.wantPos, c.wantMsg)
		})
	}
}

// TestCheckErrors exercises every validation error production with
// position assertions.
func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantPos string
		wantMsg string
	}{
		{"unknown combinator", "emit foo(n=1)", "1:6", `unknown combinator "foo"`},
		{"number as stream", "emit 5", "1:6", "a number is not a stream"},
		{"undefined name", "emit take(bar, n=5)", "1:11", `undefined name "bar"`},
		{"use before definition",
			"emit take(late, n=5)\nlet late = seq()", "1:11", `undefined name "late"`},
		{"combinator as ref", "emit take(zipf, n=5)", "1:11",
			`combinator "zipf" needs an argument list: zipf(n, s=1.2, base=0)`},
		{"unknown parameter", "emit take(seq(), m=5)", "1:18", `unknown parameter "m" of take`},
		{"duplicate parameter", "emit take(seq(), n=5, n=6)", "1:23", `duplicate parameter "n"`},
		{"parameter wants number", "emit take(seq(), n=seq())", "1:20", `parameter "n" of take expects a number`},
		{"parameter wants integer", "emit take(seq(), n=1.5)", "1:20", "must be an integer"},
		{"parameter below minimum", "emit take(cycle(n=0), n=5)", "1:19",
			"parameter n=0 of cycle is below the minimum 1"},
		{"parameter above maximum", "emit take(spread(seq(), gap=2000000), n=5)", "1:29",
			"is above the maximum 1048576"},
		{"missing required parameter", "emit take(cycle(), n=5)", "1:11",
			`missing required parameter "n" of cycle`},
		{"weighted on plain combinator", "emit take(0.5: seq(), n=4)", "1:11",
			"take does not take weighted operands"},
		{"unweighted on mix", "emit take(mix(seq(), cycle(n=4)), n=5)", "1:15",
			"mix operands need weights (signature: mix(w1: s1, w2: s2, …))"},
		{"mix weight zero", "emit take(mix(0: seq(), 1: cycle(n=4)), n=5)", "1:15",
			"mix weights must be > 0, got 0"},
		{"interleave fractional count",
			"emit take(interleave(0.5: seq(), 1: cycle(n=4)), n=5)", "1:22",
			"interleave counts must be integers ≥ 1, got 0.5"},
		{"generator with operand", "emit take(seq(cycle(n=2)), n=5)", "1:11",
			"seq takes no stream operands"},
		{"one operand wanted", "emit take(drift(seq(), cycle(n=2), every=1, step=1), n=5)", "1:11",
			"drift takes exactly one stream operand, got 2"},
		{"two operands wanted", "emit take(ramp(seq(), over=5), n=5)", "1:11",
			"ramp takes exactly two stream operands, got 1"},
		{"at least two wanted", "emit take(mix(1: seq()), n=5)", "1:11",
			"mix takes at least two stream operands, got 1"},
		{"mix needs infinite", "emit take(mix(0.5: take(seq(), n=3), 0.5: seq()), n=5)", "1:15",
			"mix requires infinite stream operands — wrap finite streams in loop(…)"},
		{"loop needs finite", "emit take(loop(seq()), n=5)", "1:16",
			"loop requires a finite operand"},
		{"concat infinite not last",
			"emit take(concat(seq(), take(seq(), n=2)), n=5)", "1:18",
			"only the last operand of concat may be infinite"},
		{"emit infinite", "emit seq()", "1:1",
			"emitted stream must be finite — wrap it in take(…, n)"},
		{"missing emit", "let a = seq()", "1:1", "missing emit statement"},
		{"let after emit", "emit take(seq(), n=1)\nlet a = seq()", "2:1",
			"emit must be the last statement (emit at 1:1)"},
		{"seed after emit", "emit take(seq(), n=1)\nseed 3", "2:1",
			"emit must be the last statement"},
		{"multiple emits", "emit take(seq(), n=1)\nemit take(seq(), n=2)", "2:1",
			"multiple emit statements (first at 1:1)"},
		{"duplicate seed", "seed 1\nseed 2\nemit take(seq(), n=1)", "2:1",
			"duplicate seed statement (first at 1:1)"},
		{"duplicate binding", "let a = seq()\nlet a = seq()\nemit take(a, n=1)", "2:1",
			`duplicate binding "a"`},
		{"binding shadows combinator", "let zipf = seq()\nemit take(zipf, n=1)", "1:1",
			`binding "zipf" shadows the combinator`},
		{"unused binding", "let a = seq()\nemit take(seq(), n=1)", "1:1",
			`unused binding "a"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := Parse("test.gcs", c.src)
			if err != nil {
				t.Fatalf("Parse failed before validation: %v", err)
			}
			_, err = Check(p)
			assertScenarioError(t, err, c.wantPos, c.wantMsg)
		})
	}
}

// TestCheckLengths asserts the static length computation across the
// finiteness rules.
func TestCheckLengths(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"emit take(seq(), n=100)", 100},
		{"emit concat(take(seq(), n=5), take(cycle(n=3), n=7))", 12},
		{"emit take(concat(take(seq(), n=3), seq()), n=10)", 10},
		{"emit take(take(seq(), n=3), n=10)", 3},
		{"emit take(loop(take(cycle(n=4), n=5)), n=12)", 12},
		{"emit drift(take(seq(), n=9), every=2, step=1)", 9},
		{"emit scatter(offset(spread(take(seq(), n=4), gap=8), by=3), n=100)", 4},
	}
	for _, c := range cases {
		p, err := Parse("test.gcs", c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		info, err := Check(p)
		if err != nil {
			t.Fatalf("Check(%q): %v", c.src, err)
		}
		if info.Length != c.want {
			t.Errorf("%q: static length %d, want %d", c.src, info.Length, c.want)
		}
	}
}

// TestSeedResolution pins the CLI-vs-program seed precedence.
func TestSeedResolution(t *testing.T) {
	seeded := &Info{Seed: 99, HasSeed: true}
	unseeded := &Info{}
	if got := ResolveSeed(seeded, 7, true); got != 7 {
		t.Errorf("explicit flag should win: got %d", got)
	}
	if got := ResolveSeed(seeded, 1, false); got != 99 {
		t.Errorf("program seed should win over flag default: got %d", got)
	}
	if got := ResolveSeed(unseeded, 1, false); got != 1 {
		t.Errorf("flag default applies when unseeded: got %d", got)
	}
}

func assertScenarioError(t *testing.T, err error, wantPos, wantMsg string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected error containing %q, got nil", wantMsg)
	}
	se, ok := err.(*Error)
	if !ok {
		t.Fatalf("error is %T, want *scenario.Error: %v", err, err)
	}
	if got := se.Pos.String(); got != wantPos {
		t.Errorf("error position %s, want %s (error: %v)", got, wantPos, err)
	}
	if !strings.Contains(se.Msg, wantMsg) {
		t.Errorf("error %q does not contain %q", se.Msg, wantMsg)
	}
	if !strings.HasPrefix(err.Error(), "test.gcs:") {
		t.Errorf("rendered error %q does not lead with the file name", err.Error())
	}
}
