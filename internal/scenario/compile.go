package scenario

import (
	"math/rand"

	"gccache/internal/model"
)

// Compile lowers a validated program to a Stream. Compilation is where
// the DSL's two replay-shaping decisions are made concrete:
//
//   - Instantiation: a let binding is a definition, not a shared
//     stream. Each reference builds an independent copy of the bound
//     expression, so `mix(0.5: hot, 0.5: drift(hot, …))` draws from
//     two decoupled hot streams.
//   - Seeding: every stateful node derives its RNG seed from the
//     program seed and the node's preorder instantiation index via a
//     SplitMix64 step. The walk order is deterministic, so the same
//     (program, seed) pair always yields the same request sequence —
//     and sibling nodes never share an RNG stream.

// Compile validates p and builds its streaming form with the given
// seed. The error, if any, is a positioned *Error from validation.
func Compile(p *Program, seed int64) (*Stream, error) {
	info, err := Check(p)
	if err != nil {
		return nil, err
	}
	c := &compiler{seed: seed, env: make(map[string]Expr)}
	var emit Expr
	for _, st := range p.Stmts {
		switch st := st.(type) {
		case *LetStmt:
			c.env[st.Name] = st.Expr
		case *EmitStmt:
			emit = st.Expr
		}
	}
	return &Stream{root: c.build(emit), length: info.Length}, nil
}

type compiler struct {
	seed   int64
	nextID uint64
	env    map[string]Expr
}

// derive computes the seed for the stateful node with the given
// instantiation index: a SplitMix64 output step over the program seed,
// so adjacent node indices get statistically independent streams.
func derive(seed int64, id uint64) int64 {
	z := uint64(seed) + (id+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// rng allocates the next node RNG. Construction-time only — the emit
// path never touches the allocator.
func (c *compiler) rng() (*rand.Rand, int64) {
	s := derive(c.seed, c.nextID)
	c.nextID++
	return rand.New(rand.NewSource(s)), s
}

// build lowers an expression to its node. The program has passed Check,
// so shapes are trusted here.
func (c *compiler) build(e Expr) node {
	switch e := e.(type) {
	case *Ref:
		return c.build(c.env[e.Name])
	case *Call:
		return c.buildCall(e)
	}
	panic("scenario: build on unvalidated expression")
}

func (c *compiler) buildCall(call *Call) node {
	spec, _ := lookup(call.Name)
	num := func(name string) int64 { return paramInt64(call, spec, name) }
	fnum := func(name string) float64 {
		for _, a := range call.Args {
			if a.Name == name {
				return a.Value.(*Number).Value
			}
		}
		return spec.paramNamed(name).def
	}
	var srcs []node
	var weights []float64
	for _, a := range call.Args {
		if a.Name != "" {
			continue
		}
		if a.Weight != nil {
			weights = append(weights, a.Weight.Value)
		}
		srcs = append(srcs, c.build(a.Value))
	}

	switch call.Name {
	case "seq":
		start := uint64(num("start"))
		return &seqNode{start: start, step: uint64(num("step")), cur: start}
	case "cycle":
		return &cycleNode{n: uint64(num("n")), start: uint64(num("start"))}
	case "stride":
		return &strideNode{n: uint64(num("n")), step: uint64(num("step"))}
	case "uniform":
		rng, seed := c.rng()
		return &uniformNode{n: num("n"), base: uint64(num("base")), rng: rng, seed: seed}
	case "zipf":
		rng, seed := c.rng()
		z := rand.NewZipf(rng, fnum("s"), 1, uint64(num("n")-1))
		return &zipfNode{base: uint64(num("base")), rng: rng, seed: seed, z: z}
	case "take":
		n := num("n")
		return &takeNode{src: srcs[0], n: n, left: n}
	case "loop":
		return &loopNode{src: srcs[0]}
	case "offset":
		return &offsetNode{src: srcs[0], by: uint64(num("by"))}
	case "spread":
		return &spreadNode{src: srcs[0], gap: uint64(num("gap"))}
	case "scatter":
		return &scatterNode{src: srcs[0], n: uint64(num("n"))}
	case "blocks":
		rng, seed := c.rng()
		run := fnum("run")
		b := num("B")
		if run > float64(b) {
			run = float64(b)
		}
		return &blocksNode{src: srcs[0], b: b, p: 1 / run, rng: rng, seed: seed}
	case "drift":
		return &driftNode{src: srcs[0], every: uint64(num("every")), step: uint64(num("step"))}
	case "splice":
		rng, seed := c.rng()
		return &spliceNode{src: srcs[0], burst: srcs[1],
			pBurst: 1 / float64(num("every")), n: num("n"), rng: rng, seed: seed}
	case "mix":
		rng, seed := c.rng()
		total := 0.0
		for _, w := range weights {
			total += w
		}
		cum := make([]float64, len(weights))
		acc := 0.0
		for i, w := range weights {
			acc += w
			cum[i] = acc / total
		}
		cum[len(cum)-1] = 1
		return &mixNode{cum: cum, srcs: srcs, rng: rng, seed: seed}
	case "interleave":
		counts := make([]int64, len(weights))
		for i, w := range weights {
			counts[i] = int64(w)
		}
		return &interleaveNode{counts: counts, srcs: srcs, left: counts[0]}
	case "concat":
		return &concatNode{srcs: srcs}
	case "ramp":
		rng, seed := c.rng()
		return &rampNode{from: srcs[0], to: srcs[1], over: float64(num("over")), rng: rng, seed: seed}
	case "diurnal":
		rng, seed := c.rng()
		return &diurnalNode{day: srcs[0], night: srcs[1], period: float64(num("period")), rng: rng, seed: seed}
	}
	panic("scenario: combinator in registry but not in compiler: " + call.Name)
}

// Stream is a compiled scenario: a deterministic, allocation-free
// trace.Source with a statically known length. It is single-pass like
// every Source, but Reset restores it to the first request for
// byte-identical re-replay (the differential tests and gcload's
// repeating load loops rely on it).
type Stream struct {
	root    node
	length  int64
	emitted int64
	cur     model.Item
}

// Next advances to the next request; it reports false after exactly
// Len() requests.
//
//gclint:hotpath
func (s *Stream) Next() bool {
	v, ok := s.root.next()
	if !ok {
		return false
	}
	s.cur = v
	s.emitted++
	return true
}

// Item returns the most recently emitted request.
func (s *Stream) Item() model.Item { return s.cur }

// Err implements trace.Source; a compiled scenario cannot fail
// mid-stream.
func (s *Stream) Err() error { return nil }

// Len returns the exact number of requests the scenario emits.
func (s *Stream) Len() int64 { return s.length }

// Emitted returns the number of requests emitted so far.
func (s *Stream) Emitted() int64 { return s.emitted }

// Reset rewinds the stream to its first request. The replayed sequence
// is byte-identical to the first pass.
func (s *Stream) Reset() {
	s.root.reset()
	s.emitted = 0
}
