// Package scenario implements the workload-scenario DSL: a small
// language whose programs compose streaming request generators — phase
// mixes with weights, diurnal and ramp rate curves, hot-set drift,
// adversary interleavings, seeded splices — and compile to a
// trace.Source, so a million-request scenario replays through the
// cachesim and concurrent engines in O(1) memory without ever
// materializing a slice.
//
// The pipeline is classic and hand-rolled end to end: lexer
// (lexer.go) → recursive-descent parser (parser.go) → typed AST
// (ast.go) → validator (validate.go, driven by the combinator registry
// in registry.go) → compiler (compile.go) emitting a tree of
// allocation-free nodes (nodes.go). Compiled scenarios are
// deterministic under a seed: every stateful node derives its RNG from
// (program seed, instantiation index), and Stream.Reset restores a
// byte-identical replay.
//
// The complete language reference — grammar, combinator semantics,
// error catalog, worked examples — is docs/SCENARIOS.md; the corpus
// under scenarios/ is the executable companion. A docs test diffs the
// manual's semantics table against the registry, so the two cannot
// drift.
//
//gclint:repro
package scenario

import (
	"fmt"
	"os"
	"strings"

	"gccache/internal/trace"
)

// FlagHelp is the shared help text for the -scenario flag, so gcsim,
// gcload, and gcscn document it identically (the cmd usage test pins
// the flag's presence).
const FlagHelp = "compile and stream a scenario DSL file (see docs/SCENARIOS.md); overrides -workload"

// Ext is the conventional scenario file extension.
const Ext = ".gcs"

// Load reads, parses, and validates a scenario file, returning the
// program and its validation info.
func Load(path string) (*Program, *Info, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}
	p, err := Parse(path, string(src))
	if err != nil {
		return nil, nil, err
	}
	info, err := Check(p)
	if err != nil {
		return nil, nil, err
	}
	return p, info, nil
}

// ResolveSeed picks the effective seed for a compile: an explicitly
// set CLI flag wins, then the program's own `seed` statement, then the
// flag's default. flagSet reports whether the user passed the flag.
func ResolveSeed(info *Info, flagSeed int64, flagSet bool) int64 {
	if flagSet || !info.HasSeed {
		return flagSeed
	}
	return info.Seed
}

// MaxTraceLen caps materialization: Trace refuses scenarios above this
// many requests (streaming replay has no such limit). Matches the
// workload package's spec cap.
const MaxTraceLen = 1 << 26

// Trace materializes a compiled scenario into an in-memory trace — the
// bridge to the slice-based tooling (exact OPT, probes, checkpoints).
// Scenarios longer than MaxTraceLen are refused; stream them instead.
func Trace(p *Program, seed int64) (trace.Trace, error) {
	s, err := Compile(p, seed)
	if err != nil {
		return nil, err
	}
	if s.Len() > MaxTraceLen {
		return nil, fmt.Errorf("scenario: %d requests exceed the %d materialization cap (use the streaming path)",
			s.Len(), MaxTraceLen)
	}
	out := make(trace.Trace, 0, s.Len())
	for s.Next() {
		out = append(out, s.Item())
	}
	return out, nil
}

// Universe replays the scenario once (O(1) memory) and returns an
// exclusive upper bound on its item IDs — the argument the bounded
// dense-path constructors need. Deterministic: the probing pass and
// the replay pass see the same sequence.
func Universe(p *Program, seed int64) (int, error) {
	s, err := Compile(p, seed)
	if err != nil {
		return 0, err
	}
	max := uint64(0)
	seen := false
	for s.Next() {
		if v := uint64(s.Item()); v >= max {
			max = v
			seen = true
		}
	}
	if !seen {
		return 0, nil
	}
	return int(max + 1), nil
}

// CombinatorsUsed returns the sorted set of combinator names appearing
// anywhere in the program — gcscn -explain prints their reference
// entries.
func CombinatorsUsed(p *Program) []string {
	used := make(map[string]bool)
	var walk func(e Expr)
	walk = func(e Expr) {
		call, ok := e.(*Call)
		if !ok {
			return
		}
		used[call.Name] = true
		for _, a := range call.Args {
			walk(a.Value)
		}
	}
	for _, st := range p.Stmts {
		switch st := st.(type) {
		case *LetStmt:
			walk(st.Expr)
		case *EmitStmt:
			walk(st.Expr)
		}
	}
	var names []string
	for _, c := range Combinators() { // registry order: already sorted
		if used[c] {
			names = append(names, c)
		}
	}
	return names
}

// Describe renders a one-paragraph structural summary of a validated
// program: binding count, combinators used, emit length — the default
// output of gcscn.
func Describe(p *Program, info *Info) string {
	lets := 0
	for _, st := range p.Stmts {
		if _, ok := st.(*LetStmt); ok {
			lets++
		}
	}
	seed := "unseeded (CLI -seed applies)"
	if info.HasSeed {
		seed = fmt.Sprintf("seed %d", info.Seed)
	}
	return fmt.Sprintf("%d bindings, %d requests, %s, combinators: %s",
		lets, info.Length, seed, strings.Join(CombinatorsUsed(p), ", "))
}
