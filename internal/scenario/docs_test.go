package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestManualMatchesRegistry diffs the semantics table in
// docs/SCENARIOS.md (between the combinators:begin/end markers)
// against the compiler's combinator registry: every combinator must
// appear exactly once with its Signature() rendered verbatim and its
// Doc() string unchanged, and the manual may not document combinators
// the compiler lacks. This is what keeps the manual and the language
// from drifting apart.
func TestManualMatchesRegistry(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "SCENARIOS.md"))
	if err != nil {
		t.Fatalf("the manual is a first-class deliverable: %v", err)
	}
	text := string(raw)
	begin := strings.Index(text, "<!-- combinators:begin -->")
	end := strings.Index(text, "<!-- combinators:end -->")
	if begin < 0 || end < begin {
		t.Fatal("docs/SCENARIOS.md is missing the combinators:begin/end markers around the semantics table")
	}
	table := text[begin:end]

	// Parse `| `signature` | length | semantics |` rows.
	documented := make(map[string]string) // combinator name -> doc cell
	signatures := make(map[string]string) // combinator name -> signature cell
	for _, line := range strings.Split(table, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 5 { // "", sig, length, doc, ""
			t.Errorf("malformed table row: %s", line)
			continue
		}
		sig := strings.Trim(strings.TrimSpace(cells[1]), "`")
		doc := strings.TrimSpace(cells[3])
		name := sig[:strings.Index(sig, "(")]
		if _, dup := documented[name]; dup {
			t.Errorf("combinator %q documented twice", name)
		}
		documented[name] = doc
		signatures[name] = sig
	}

	for _, name := range Combinators() {
		sig, ok := signatures[name]
		if !ok {
			t.Errorf("combinator %q is missing from the manual's semantics table", name)
			continue
		}
		if want := Signature(name); sig != want {
			t.Errorf("manual signature for %q is %q, registry says %q", name, sig, want)
		}
		if doc, want := documented[name], Doc(name); doc != want {
			t.Errorf("manual semantics for %q drifted:\n  manual:   %s\n  registry: %s", name, doc, want)
		}
		delete(documented, name)
	}
	for name := range documented {
		t.Errorf("manual documents %q, which the compiler does not accept", name)
	}
}

// TestManualErrorCatalog spot-checks that the manual's error catalog
// quotes real diagnostics: a sample of messages from the catalog must
// be producible by the front end verbatim (up to the positioned
// prefix).
func TestManualErrorCatalog(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "SCENARIOS.md"))
	if err != nil {
		t.Fatal(err)
	}
	manual := string(raw)
	cases := []string{
		"emitted stream must be finite — wrap it in take(…, n)",
		"loop requires a finite operand (it already repeats forever)",
		"only the last operand of concat may be infinite",
		"a number is not a stream (did you mean a combinator call?)",
		"expected ')' to close the argument list",
		"binding \"zipf\" shadows the combinator of the same name",
	}
	for _, want := range cases {
		if !strings.Contains(manual, want) {
			t.Errorf("manual's error catalog is missing the diagnostic %q", want)
		}
	}
}
