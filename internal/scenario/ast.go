package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file defines the typed AST the parser produces and the canonical
// printer (Format). The printer is the inverse the fuzz target pins:
// parse → Format → parse must reach a fixpoint, so every syntactic
// choice the parser accepts (underscored digits, k/M/G suffixes,
// trailing commas) normalizes to exactly one spelling here.

// Pos is a source position, 1-based.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a positioned scenario error: parse, validation, and compile
// errors all carry the source coordinates of the offending token.
type Error struct {
	File string // file name as given to Parse ("" prints as "scenario")
	Pos  Pos
	Msg  string
}

func (e *Error) Error() string {
	file := e.File
	if file == "" {
		file = "scenario"
	}
	return fmt.Sprintf("%s:%s: %s", file, e.Pos, e.Msg)
}

// errf builds a positioned error.
func errf(file string, pos Pos, format string, args ...any) *Error {
	return &Error{File: file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Program is a parsed scenario: an optional seed, a sequence of let
// bindings, and exactly one trailing emit statement (the validator
// enforces the shape; the parser only collects statements).
type Program struct {
	File  string
	Stmts []Stmt
}

// Stmt is one scenario statement.
type Stmt interface {
	stmtPos() Pos
}

// SeedStmt sets the program's default seed: `seed 42`.
type SeedStmt struct {
	Pos  Pos
	Seed int64
}

// LetStmt binds a name to a stream expression: `let hot = zipf(n=4096)`.
type LetStmt struct {
	Pos  Pos
	Name string
	Expr Expr
}

// EmitStmt names the stream the scenario emits: `emit take(hot, 1M)`.
type EmitStmt struct {
	Pos  Pos
	Expr Expr
}

func (s *SeedStmt) stmtPos() Pos { return s.Pos }
func (s *LetStmt) stmtPos() Pos  { return s.Pos }
func (s *EmitStmt) stmtPos() Pos { return s.Pos }

// Expr is a stream or numeric expression.
type Expr interface {
	exprPos() Pos
}

// Call applies a combinator: `mix(0.8: hot, 0.2: scan)`.
type Call struct {
	Pos  Pos
	Name string
	Args []Arg
}

// Arg is one call argument. Exactly one of the three forms holds:
//
//   - positional: Name == "" and Weight == nil — a stream operand;
//   - named:      Name != "" — a numeric parameter (`n=4096`);
//   - weighted:   Weight != nil — a weighted stream operand (`0.8: hot`).
type Arg struct {
	Pos    Pos
	Name   string  // named parameter, or ""
	Weight *Number // weighted operand, or nil
	Value  Expr
}

// Ref references a let binding by name. Each reference instantiates an
// independent copy of the bound expression at compile time (streams are
// not shared; see the manual's "References" section).
type Ref struct {
	Pos  Pos
	Name string
}

// Number is a numeric literal. The lexer folds underscores and the
// k/M/G suffixes, so 1_500k and 1.5M both carry Value 1500000.
type Number struct {
	Pos   Pos
	Value float64
}

func (e *Call) exprPos() Pos   { return e.Pos }
func (e *Ref) exprPos() Pos    { return e.Pos }
func (e *Number) exprPos() Pos { return e.Pos }

// IsInt reports whether the literal is an exact integer that fits the
// int64 parameters the combinators take.
func (n *Number) IsInt() bool {
	return n.Value == math.Trunc(n.Value) && math.Abs(n.Value) < 1<<53
}

// Int returns the literal as an int64; only meaningful when IsInt.
func (n *Number) Int() int64 { return int64(n.Value) }

// Format renders the program in canonical form: one statement per
// line, seed first as written, numbers re-printed minimally. Parsing
// the output yields an equal AST (the fuzz fixpoint).
func Format(p *Program) string {
	var b strings.Builder
	for _, st := range p.Stmts {
		switch st := st.(type) {
		case *SeedStmt:
			fmt.Fprintf(&b, "seed %d\n", st.Seed)
		case *LetStmt:
			fmt.Fprintf(&b, "let %s = ", st.Name)
			formatExpr(&b, st.Expr)
			b.WriteByte('\n')
		case *EmitStmt:
			b.WriteString("emit ")
			formatExpr(&b, st.Expr)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func formatExpr(b *strings.Builder, e Expr) {
	switch e := e.(type) {
	case *Ref:
		b.WriteString(e.Name)
	case *Number:
		b.WriteString(formatNumber(e.Value))
	case *Call:
		b.WriteString(e.Name)
		b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			switch {
			case a.Name != "":
				b.WriteString(a.Name)
				b.WriteByte('=')
			case a.Weight != nil:
				b.WriteString(formatNumber(a.Weight.Value))
				b.WriteString(": ")
			}
			formatExpr(b, a.Value)
		}
		b.WriteByte(')')
	}
}

// formatNumber prints integers without a decimal point and everything
// else in plain decimal notation ('f', never scientific — the lexer
// has no exponent syntax, and the parse→Format→parse fixpoint requires
// every printed number to re-lex).
func formatNumber(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1<<53 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}
