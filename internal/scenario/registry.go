package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// The combinator registry is the single source of truth for the
// language surface: the validator checks calls against it, the compiler
// switches on its names, `gcscn -explain` prints it, and a docs test
// diffs it against the semantics table in docs/SCENARIOS.md so the
// manual cannot drift from what the compiler accepts.

// paramKind types a named parameter.
type paramKind int

const (
	paramInt paramKind = iota
	paramFloat
)

// param describes one named parameter of a combinator.
type param struct {
	name     string
	kind     paramKind
	required bool
	def      float64 // default when not required
	min, max float64 // inclusive bounds (math.Inf(1) = unbounded above)
}

// operandRule describes the stream operands a combinator takes.
type operandRule int

const (
	noOperands       operandRule = iota // pure generator
	oneOperand                          // exactly one positional stream
	twoOperands                         // exactly two positional streams
	variadicOperands                    // two or more positional streams
	weightedOperands                    // two or more `weight: stream` operands
)

// lengthRule describes how a combinator's output length derives from
// its operands. The validator uses it to compute the static length of
// every expression and to enforce the finiteness constraints (emit
// must be finite; mixing-family combinators need infinite inputs).
type lengthRule int

const (
	lenInfinite lengthRule = iota // always infinite; stream operands must be infinite
	lenSame                       // exactly the operand's length class
	lenTake                       // min(n, operand length); always finite
	lenLoop                       // operand must be finite; result infinite
	lenConcat                     // sum of operands; all but the last must be finite
)

// combinator is one registry entry.
type combinator struct {
	name     string
	operands operandRule
	params   []param
	length   lengthRule
	// weightInt: weighted operands take integer counts (interleave)
	// rather than float probabilities (mix).
	weightInt bool
	// doc is the one-line semantics used by gcscn -explain.
	doc string
}

// registry lists every combinator the compiler accepts, alphabetically.
var registry = []combinator{
	{
		name: "blocks", operands: oneOperand, length: lenInfinite,
		params: []param{
			{name: "B", kind: paramInt, required: true, min: 1, max: 1 << 20},
			{name: "run", kind: paramFloat, def: 1, min: 1, max: math.Inf(1)},
		},
		doc: "treat operand values as block IDs; emit geometric runs of consecutive items inside each block (mean length run, clamped to B)",
	},
	{
		name: "concat", operands: variadicOperands, length: lenConcat,
		doc: "emit each operand to exhaustion, in order; all but the last must be finite",
	},
	{
		name: "cycle", operands: noOperands, length: lenInfinite,
		params: []param{
			{name: "n", kind: paramInt, required: true, min: 1, max: 1 << 53},
			{name: "start", kind: paramInt, def: 0, min: 0, max: 1 << 53},
		},
		doc: "repeating sweep start, start+1, …, start+n-1, start, … (the classic LRU-adversary loop)",
	},
	{
		name: "diurnal", operands: twoOperands, length: lenInfinite,
		params: []param{
			{name: "period", kind: paramInt, required: true, min: 2, max: 1 << 53},
		},
		doc: "sinusoidal mixture of (day, night): the day operand's weight is ½(1+cos 2πi/period), so request i=0 is pure day and i=period/2 pure night",
	},
	{
		name: "drift", operands: oneOperand, length: lenSame,
		params: []param{
			{name: "every", kind: paramInt, required: true, min: 1, max: 1 << 53},
			{name: "step", kind: paramInt, required: true, min: 1, max: 1 << 53},
		},
		doc: "add a drifting offset to the operand: the offset grows by step after every `every` requests (hot-set drift)",
	},
	{
		name: "interleave", operands: weightedOperands, length: lenInfinite,
		weightInt: true,
		doc:       "deterministic round-robin: k1 requests from the first operand, then k2 from the second, …, repeating (adversary interleavings)",
	},
	{
		name: "loop", operands: oneOperand, length: lenLoop,
		doc: "repeat a finite operand forever; every pass is byte-identical (positions and RNG state reset between passes)",
	},
	{
		name: "mix", operands: weightedOperands, length: lenInfinite,
		doc: "seeded probabilistic mixture: each request is drawn from operand i with probability wi/Σw",
	},
	{
		name: "offset", operands: oneOperand, length: lenSame,
		params: []param{
			{name: "by", kind: paramInt, required: true, min: 0, max: 1 << 53},
		},
		doc: "add the constant `by` to every item (disjoint address regions for mixture components)",
	},
	{
		name: "ramp", operands: twoOperands, length: lenInfinite,
		params: []param{
			{name: "over", kind: paramInt, required: true, min: 1, max: 1 << 53},
		},
		doc: "linear hand-over from the first operand to the second: request i is drawn from the second with probability min(1, i/over)",
	},
	{
		name: "scatter", operands: oneOperand, length: lenSame,
		params: []param{
			{name: "n", kind: paramInt, required: true, min: 1, max: 1 << 53},
		},
		doc: "destroy spatial locality, keep the reuse pattern: item v maps to (v·2654435761) mod n, a fixed pseudo-random permutation of [0,n)",
	},
	{
		name: "seq", operands: noOperands, length: lenInfinite,
		params: []param{
			{name: "start", kind: paramInt, def: 0, min: 0, max: 1 << 53},
			{name: "step", kind: paramInt, def: 1, min: 1, max: 1 << 53},
		},
		doc: "unbounded ascending addresses start, start+step, … (cold sequential scan; maximal spatial locality at step 1)",
	},
	{
		name: "splice", operands: twoOperands, length: lenInfinite,
		params: []param{
			{name: "every", kind: paramInt, required: true, min: 1, max: 1 << 53},
			{name: "n", kind: paramInt, required: true, min: 1, max: 1 << 53},
		},
		doc: "seeded splices: emit the first operand, injecting n-request bursts of the second at geometric intervals with mean `every`",
	},
	{
		name: "spread", operands: oneOperand, length: lenSame,
		params: []param{
			{name: "gap", kind: paramInt, required: true, min: 1, max: 1 << 20},
		},
		doc: "multiply every item by gap: with gap ≥ B each operand value occupies its own block (pure temporal locality)",
	},
	{
		name: "stride", operands: noOperands, length: lenInfinite,
		params: []param{
			{name: "n", kind: paramInt, required: true, min: 1, max: 1 << 53},
			{name: "step", kind: paramInt, required: true, min: 1, max: 1 << 20},
		},
		doc: "cyclic strided walk 0, step, 2·step, … ((i mod n)·step): one item per block when step ≥ B",
	},
	{
		name: "take", operands: oneOperand, length: lenTake,
		params: []param{
			{name: "n", kind: paramInt, required: true, min: 1, max: 1 << 53},
		},
		doc: "the first n requests of the operand (fewer if it exhausts first); the only way to make an infinite stream finite",
	},
	{
		name: "uniform", operands: noOperands, length: lenInfinite,
		params: []param{
			{name: "n", kind: paramInt, required: true, min: 1, max: 1 << 53},
			{name: "base", kind: paramInt, def: 0, min: 0, max: 1 << 53},
		},
		doc: "uniform random item in [base, base+n) (no locality of either kind)",
	},
	{
		name: "zipf", operands: noOperands, length: lenInfinite,
		params: []param{
			{name: "n", kind: paramInt, required: true, min: 1, max: 1 << 53},
			{name: "s", kind: paramFloat, def: 1.2, min: 1.0000001, max: 64},
			{name: "base", kind: paramInt, def: 0, min: 0, max: 1 << 53},
		},
		doc: "Zipf(s)-popular items base+0, base+1, … over a universe of n (rank 0 hottest; heavy temporal locality)",
	},
}

// lookup returns the registry entry for name.
func lookup(name string) (*combinator, bool) {
	i := sort.Search(len(registry), func(i int) bool { return registry[i].name >= name })
	if i < len(registry) && registry[i].name == name {
		return &registry[i], true
	}
	return nil, false
}

// Combinators returns the names of every combinator the compiler
// accepts, alphabetically — the set the manual's semantics table is
// diffed against.
func Combinators() []string {
	out := make([]string, len(registry))
	for i, c := range registry {
		out[i] = c.name
	}
	return out
}

// Signature renders the canonical call shape of a combinator, e.g.
// "zipf(n, s=1.2, base=0)" or "mix(w1: s1, w2: s2, …)". The manual's
// semantics table must carry these verbatim (docs_test enforces it).
func Signature(name string) string {
	c, ok := lookup(name)
	if !ok {
		return ""
	}
	var parts []string
	switch c.operands {
	case oneOperand:
		parts = append(parts, "src")
	case twoOperands:
		switch c.name {
		case "diurnal":
			parts = append(parts, "day", "night")
		case "ramp":
			parts = append(parts, "from", "to")
		case "splice":
			parts = append(parts, "src", "burst")
		default:
			parts = append(parts, "a", "b")
		}
	case variadicOperands:
		parts = append(parts, "s1", "s2", "…")
	case weightedOperands:
		if c.weightInt {
			parts = append(parts, "k1: s1", "k2: s2", "…")
		} else {
			parts = append(parts, "w1: s1", "w2: s2", "…")
		}
	}
	for _, p := range c.params {
		if p.required {
			parts = append(parts, p.name)
		} else {
			parts = append(parts, fmt.Sprintf("%s=%s", p.name, formatNumber(p.def)))
		}
	}
	return c.name + "(" + strings.Join(parts, ", ") + ")"
}

// Doc returns the one-line semantics of a combinator ("" if unknown).
func Doc(name string) string {
	c, ok := lookup(name)
	if !ok {
		return ""
	}
	return c.doc
}
