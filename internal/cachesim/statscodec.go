package cachesim

import (
	"encoding/binary"
	"fmt"
)

// AppendStats appends a compact binary encoding of s to dst: the policy
// name (uvarint length + bytes) followed by the seven counters as
// varints. The encoding is canonical — equal Stats encode identically —
// so checkpointed runs can be compared byte-for-byte.
func AppendStats(dst []byte, s Stats) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s.Policy)))
	dst = append(dst, s.Policy...)
	for _, v := range [...]int64{s.Accesses, s.Hits, s.Misses,
		s.SpatialHits, s.TemporalHits, s.ItemsLoaded, s.Evictions} {
		dst = binary.AppendVarint(dst, v)
	}
	return dst
}

// DecodeStats parses one AppendStats encoding and returns the Stats and
// the remaining bytes. Truncated input yields an error, never a panic.
func DecodeStats(b []byte) (Stats, []byte, error) {
	var s Stats
	n, k := binary.Uvarint(b)
	if k <= 0 || n > uint64(len(b)-k) {
		return s, nil, fmt.Errorf("cachesim: truncated stats policy name")
	}
	s.Policy = string(b[k : k+int(n)])
	b = b[k+int(n):]
	for _, dst := range [...]*int64{&s.Accesses, &s.Hits, &s.Misses,
		&s.SpatialHits, &s.TemporalHits, &s.ItemsLoaded, &s.Evictions} {
		v, k := binary.Varint(b)
		if k <= 0 {
			return Stats{}, nil, fmt.Errorf("cachesim: truncated stats counter")
		}
		*dst, b = v, b[k:]
	}
	return s, b, nil
}
