package cachesim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gccache/internal/faults"
	"gccache/internal/model"
	"gccache/internal/trace"
)

func TestSweepCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := SweepCtx(ctx, 1000, workers, func() struct{} { return struct{}{} },
			func(int, struct{}) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d indices ran under a dead context", workers, ran.Load())
		}
	}
}

func TestSweepCtxStopsEarlyButCompletesClaimedChunks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := SweepCtx(ctx, 100000, 4, func() struct{} { return struct{}{} },
		func(i int, _ struct{}) {
			if i == 0 {
				cancel()
			}
			ran.Add(1)
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got == 0 || got == 100000 {
		t.Fatalf("ran %d of 100000 indices, want a strict partial run", got)
	}
}

func TestSweepCtxCompleteRunReturnsNilEvenIfCtxDiesAfter(t *testing.T) {
	// A context that ends after all work is claimed must not turn a
	// complete sweep into a spurious error.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := SweepCtx(ctx, 64, 4, func() struct{} { return struct{}{} },
		func(int, struct{}) {}); err != nil {
		t.Fatalf("complete sweep returned %v", err)
	}
}

func TestSweepHardenedQuarantinesExactlyScheduledIndices(t *testing.T) {
	const n = 2000
	in := faults.New(faults.Plan{Seed: 42, PanicFrac: 0.05, PanicAttempts: faults.Forever})
	want := in.PanicIndices(n)
	if len(want) == 0 {
		t.Fatal("fault plan scheduled no panics")
	}
	for _, workers := range []int{1, 4} {
		inj := faults.New(faults.Plan{Seed: 42, PanicFrac: 0.05, PanicAttempts: faults.Forever})
		results := make([]int64, n)
		var st SweepStats
		q, err := SweepHardened(context.Background(), n, workers, RetryPolicy{}, &st,
			func() struct{} { return struct{}{} },
			func(i int, _ struct{}) {
				inj.Step(i)
				results[i] = int64(i) * 3
			})
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if len(q) != len(want) {
			t.Fatalf("workers=%d: quarantined %d indices, want %d", workers, len(q), len(want))
		}
		for j, item := range q {
			if item.Index != want[j] {
				t.Fatalf("workers=%d: quarantine[%d] = index %d, want %d", workers, j, item.Index, want[j])
			}
			if item.Attempts != 1 {
				t.Errorf("workers=%d: index %d took %d attempts without retries", workers, item.Index, item.Attempts)
			}
			inj2, ok := item.Panic.(faults.Injected)
			if !ok || inj2.Index != item.Index {
				t.Errorf("workers=%d: quarantine panic value %v", workers, item.Panic)
			}
		}
		if len(st.Quarantined) != len(want) {
			t.Errorf("workers=%d: st.Quarantined has %d entries, want %d", workers, len(st.Quarantined), len(want))
		}
		// Every non-quarantined index must have completed.
		isQ := make(map[int]bool, len(want))
		for _, i := range want {
			isQ[i] = true
		}
		for i, v := range results {
			if isQ[i] {
				if v != 0 {
					t.Fatalf("workers=%d: quarantined index %d has a result", workers, i)
				}
			} else if v != int64(i)*3 {
				t.Fatalf("workers=%d: index %d missing its result", workers, i)
			}
		}
	}
}

func TestSweepHardenedRetriesMatchFaultFree(t *testing.T) {
	const n = 2000
	baseline := make([]int64, n)
	Sweep(n, 4, func() struct{} { return struct{}{} }, func(i int, _ struct{}) {
		baseline[i] = int64(i)*7 + 1
	})
	for _, workers := range []int{1, 4} {
		inj := faults.New(faults.Plan{Seed: 9, PanicFrac: 0.05, PanicAttempts: 2})
		got := make([]int64, n)
		q, err := SweepHardened(context.Background(), n, workers,
			RetryPolicy{MaxRetries: 3, Backoff: time.Microsecond}, nil,
			func() struct{} { return struct{}{} },
			func(i int, _ struct{}) {
				inj.Step(i)
				got[i] = int64(i)*7 + 1
			})
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if len(q) != 0 {
			t.Fatalf("workers=%d: transient faults left %d quarantined: %v", workers, len(q), q)
		}
		for i := range got {
			if got[i] != baseline[i] {
				t.Fatalf("workers=%d: index %d = %d, want %d (not identical to fault-free)",
					workers, i, got[i], baseline[i])
			}
		}
	}
}

func TestSweepHardenedRebuildDiscardsPoisonedWorker(t *testing.T) {
	const n = 64
	var built atomic.Int64
	inj := faults.New(faults.Plan{Seed: 1, PanicFrac: 1, PanicAttempts: 1})
	q, err := SweepHardened(context.Background(), n, 1,
		RetryPolicy{MaxRetries: 1, Rebuild: true}, nil,
		func() *int { built.Add(1); v := 0; return &v },
		func(i int, w *int) {
			*w++
			inj.Step(i)
		})
	if err != nil || len(q) != 0 {
		t.Fatalf("q=%v err=%v", q, err)
	}
	// One initial worker plus one rebuild per index (every index panics
	// once).
	if got := built.Load(); got != n+1 {
		t.Errorf("built %d workers, want %d", got, n+1)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	r := RetryPolicy{Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	for retry, want := range []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond,
	} {
		if got := r.backoffFor(retry); got != want {
			t.Errorf("backoffFor(%d) = %v, want %v", retry, got, want)
		}
	}
	if got := (RetryPolicy{}).backoffFor(3); got != 0 {
		t.Errorf("zero policy backoff = %v", got)
	}
	if got := (RetryPolicy{Backoff: time.Millisecond}).backoffFor(10); got != 16*time.Millisecond {
		t.Errorf("default cap = %v, want 16ms", got)
	}
}

func TestRunCtxCancelsMidTrace(t *testing.T) {
	tr := make(trace.Trace, 3*cancelStride)
	for i := range tr {
		tr[i] = model.Item(i % 64)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := RunCtx(ctx, &fakeDeterministic{}, tr)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Accesses != 0 {
		t.Errorf("dead-context run observed %d accesses", st.Accesses)
	}
	// An un-cancelled run matches Run exactly.
	got, err := RunColdCtx(context.Background(), &fakeDeterministic{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	want := RunCold(&fakeDeterministic{}, tr)
	if got != want {
		t.Errorf("RunColdCtx = %+v, want %+v", got, want)
	}
}
