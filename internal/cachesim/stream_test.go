package cachesim_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/policy"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

// streamFixture writes tr to a temp file and returns the path.
func streamFixture(t *testing.T, tr trace.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.gct")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunStreamMatchesRunAllPolicies is the stream-vs-slice equivalence
// gate: replaying a trace from disk through RunStream must produce
// Stats byte-identical to Run over the loaded trace, for every dense
// policy. Randomized GCM is covered too — both replays see the same
// seed, so the coin flips line up.
func TestRunStreamMatchesRunAllPolicies(t *testing.T) {
	geo := model.NewFixed(8)
	tr, err := workload.FromSpec("blockruns:blocks=128,B=8,run=4,len=40000", 11)
	if err != nil {
		t.Fatal(err)
	}
	u := model.ItemUniverse(geo, tr.Universe())
	path := streamFixture(t, tr)

	builders := map[string]func() cachesim.Cache{
		"item-lru":  func() cachesim.Cache { return policy.NewItemLRUBounded(256, u) },
		"block-lru": func() cachesim.Cache { return policy.NewBlockLRUBounded(256, geo, u) },
		"iblp":      func() cachesim.Cache { return core.NewIBLPEvenSplitBounded(256, geo, u) },
		"gcm":       func() cachesim.Cache { return core.NewGCMBounded(256, geo, 42, u) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			want := cachesim.RunColdBounded(build(), tr, u)

			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			sc, err := trace.NewScanner(f)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cachesim.RunColdStreamBounded(build(), sc, u)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("streamed stats differ from in-memory replay:\n  stream: %+v\n  slice:  %+v", got, want)
			}

			// The generic (map-recorder) stream agrees too.
			gotGeneric, err := cachesim.RunFile(context.Background(), build(), path, 0)
			if err != nil {
				t.Fatal(err)
			}
			if gotGeneric != want {
				t.Errorf("RunFile stats differ: %+v != %+v", gotGeneric, want)
			}
		})
	}
}

// TestRunStreamTextSource checks the text scanner drives the engine the
// same way the binary one does.
func TestRunStreamTextSource(t *testing.T) {
	geo := model.NewFixed(4)
	tr, err := workload.FromSpec("blockruns:blocks=32,B=4,run=3,len=5000", 3)
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	if err := tr.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	want := cachesim.RunCold(core.NewIBLPEvenSplit(64, geo), tr)
	got, err := cachesim.RunColdStream(core.NewIBLPEvenSplit(64, geo), trace.NewTextScanner(&text))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("text-streamed stats %+v != %+v", got, want)
	}
}

// TestRunStreamSourceError checks a failing source surfaces its error
// along with the statistics accumulated before the failure.
func TestRunStreamSourceError(t *testing.T) {
	tr := make(trace.Trace, 1000)
	for i := range tr {
		tr[i] = model.Item(i % 64)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-2]
	sc, err := trace.NewScanner(bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	st, err := cachesim.RunColdStream(policy.NewItemLRU(32), sc)
	if err == nil {
		t.Fatal("truncated stream replayed cleanly")
	}
	if st.Accesses == 0 || st.Accesses >= int64(len(tr)) {
		t.Errorf("partial stats cover %d accesses, want in (0, %d)", st.Accesses, len(tr))
	}
}

// TestRunStreamCtxCancel checks streaming replay honours cancellation:
// a pre-cancelled context stops within one stride and reports ctx's
// error with partial statistics.
func TestRunStreamCtxCancel(t *testing.T) {
	tr := make(trace.Trace, 100_000)
	for i := range tr {
		tr[i] = model.Item(i % 256)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := trace.NewScanner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := cachesim.RunStreamCtx(ctx, policy.NewItemLRU(32), sc)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Accesses >= int64(len(tr)) {
		t.Errorf("cancelled replay still consumed the whole stream (%d accesses)", st.Accesses)
	}
}

// TestRunStreamZeroAllocSteadyState pins the tentpole's memory budget:
// the streaming per-access path — scanner decode, policy access,
// bounded recorder classification, context poll — must not allocate.
// The fixed overhead (scanner + bufio buffer per replay) is tolerated;
// anything proportional to the trace would blow the bound.
func TestRunStreamZeroAllocSteadyState(t *testing.T) {
	const universe = 512
	geo := model.NewFixed(8)
	tr, err := workload.FromSpec("blockruns:blocks=64,B=8,run=4,len=60000", 7)
	if err != nil {
		t.Fatal(err)
	}
	u := model.ItemUniverse(geo, tr.Universe())
	if u > universe {
		t.Fatalf("fixture universe %d grew past %d", u, universe)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	c := core.NewIBLPEvenSplitBounded(128, geo, universe)
	ctx := context.Background()
	rd := bytes.NewReader(raw)

	avg := testing.AllocsPerRun(10, func() {
		rd.Reset(raw)
		sc, err := trace.NewScanner(rd)
		if err != nil {
			t.Fatal(err)
		}
		c.Reset()
		st, err := cachesim.RunStreamBoundedCtx(ctx, c, sc, universe)
		if err != nil || st.Accesses != int64(len(tr)) {
			t.Fatalf("accesses=%d err=%v", st.Accesses, err)
		}
	})
	// Per-replay constant: scanner, bufio reader+buffer, recorder bitset.
	if avg > 12 {
		t.Errorf("streaming replay of %d accesses costs %.1f allocs, want a small constant (≤12): per-access path is allocating", len(tr), avg)
	}
}
