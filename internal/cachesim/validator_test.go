package cachesim

import (
	"strings"
	"testing"

	"gccache/internal/model"
)

// scripted is a cache whose Access returns pre-programmed results,
// used to verify that the Validator catches each class of violation.
type scripted struct {
	script   []Access
	pos      int
	capacity int
	contains func(model.Item) bool
	length   func() int
}

func (s *scripted) Name() string { return "scripted" }
func (s *scripted) Access(model.Item) Access {
	a := s.script[s.pos]
	s.pos++
	return a
}
func (s *scripted) Contains(it model.Item) bool {
	if s.contains != nil {
		return s.contains(it)
	}
	return true
}
func (s *scripted) Len() int {
	if s.length != nil {
		return s.length()
	}
	return -1
}
func (s *scripted) Capacity() int { return s.capacity }
func (s *scripted) Reset()        {}

func expectViolation(t *testing.T, v *Validator, wantSubstr string) {
	t.Helper()
	err := v.Err()
	if err == nil {
		t.Fatalf("expected violation containing %q, got none", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("violation %q does not mention %q", err, wantSubstr)
	}
}

func TestValidatorCatchesFalseHit(t *testing.T) {
	g := model.NewFixed(4)
	s := &scripted{capacity: 4, script: []Access{{Hit: true}}}
	v := NewValidator(s, g)
	v.Access(1)
	expectViolation(t, v, "hit=true")
}

func TestValidatorCatchesLoadOnHit(t *testing.T) {
	g := model.NewFixed(4)
	s := &scripted{capacity: 4,
		length: func() int { return 1 },
		script: []Access{
			{Loaded: []model.Item{1}},
			{Hit: true, Loaded: []model.Item{2}},
		}}
	v := NewValidator(s, g)
	v.Access(1)
	if v.Err() != nil {
		t.Fatalf("clean access flagged: %v", v.Err())
	}
	v.Access(1)
	expectViolation(t, v, "loads on a hit")
}

func TestValidatorCatchesMissingSelfLoad(t *testing.T) {
	g := model.NewFixed(4)
	s := &scripted{capacity: 4, length: func() int { return 1 },
		script: []Access{{Loaded: []model.Item{2}}}}
	v := NewValidator(s, g)
	v.Access(1)
	expectViolation(t, v, "missing requested item")
}

func TestValidatorCatchesForeignBlockLoad(t *testing.T) {
	g := model.NewFixed(4)
	s := &scripted{capacity: 4, length: func() int { return 2 },
		script: []Access{{Loaded: []model.Item{1, 9}}}}
	v := NewValidator(s, g)
	v.Access(1)
	expectViolation(t, v, "outside requested block")
}

func TestValidatorCatchesPhantomEviction(t *testing.T) {
	g := model.NewFixed(4)
	s := &scripted{capacity: 4, length: func() int { return 1 },
		script: []Access{{Loaded: []model.Item{1}, Evicted: []model.Item{7}}}}
	v := NewValidator(s, g)
	v.Access(1)
	expectViolation(t, v, "was not present")
}

func TestValidatorCatchesSelfEviction(t *testing.T) {
	g := model.NewFixed(4)
	s := &scripted{capacity: 4, length: func() int { return 0 },
		script: []Access{{Loaded: []model.Item{1}, Evicted: []model.Item{1}}}}
	v := NewValidator(s, g)
	v.Access(1)
	expectViolation(t, v, "evicted by its own access")
}

func TestValidatorCatchesCapacityOverflow(t *testing.T) {
	g := model.NewFixed(4)
	s := &scripted{capacity: 1, length: func() int { return 2 },
		script: []Access{{Loaded: []model.Item{1, 2}}}}
	v := NewValidator(s, g)
	v.Access(1)
	expectViolation(t, v, "exceed capacity")
}

func TestValidatorCatchesLenDisagreement(t *testing.T) {
	g := model.NewFixed(4)
	s := &scripted{capacity: 4, length: func() int { return 5 },
		script: []Access{{Loaded: []model.Item{1}}}}
	v := NewValidator(s, g)
	v.Access(1)
	expectViolation(t, v, "disagrees with shadow")
}

func TestValidatorCatchesContainsLie(t *testing.T) {
	g := model.NewFixed(4)
	s := &scripted{capacity: 4, length: func() int { return 1 },
		contains: func(model.Item) bool { return false },
		script:   []Access{{Loaded: []model.Item{1}}}}
	v := NewValidator(s, g)
	v.Access(1)
	expectViolation(t, v, "right after it was served")
}

func TestValidatorLatchesFirstError(t *testing.T) {
	g := model.NewFixed(4)
	s := &scripted{capacity: 4, script: []Access{{Hit: true}, {Hit: true}}}
	v := NewValidator(s, g)
	v.Access(1)
	first := v.Err()
	v.Access(2)
	if v.Err() != first {
		t.Error("error not latched")
	}
}

func TestNetChanges(t *testing.T) {
	l, e := NetChanges(
		[]model.Item{1, 2, 3},
		[]model.Item{2, 9},
	)
	if len(l) != 2 || l[0] != 1 || l[1] != 3 {
		t.Errorf("netLoaded = %v", l)
	}
	if len(e) != 1 || e[0] != 9 {
		t.Errorf("netEvicted = %v", e)
	}
}

func TestNetChangesNoOverlap(t *testing.T) {
	l, e := NetChanges([]model.Item{1}, []model.Item{2})
	if len(l) != 1 || len(e) != 1 {
		t.Errorf("no-overlap case mangled: %v %v", l, e)
	}
	l, e = NetChanges(nil, []model.Item{2})
	if l != nil || len(e) != 1 {
		t.Errorf("nil loaded: %v %v", l, e)
	}
	l, e = NetChanges([]model.Item{1}, nil)
	if len(l) != 1 || e != nil {
		t.Errorf("nil evicted: %v %v", l, e)
	}
}

func TestNetChangesFullCancellation(t *testing.T) {
	l, e := NetChanges([]model.Item{4, 5}, []model.Item{5, 4})
	if len(l) != 0 || len(e) != 0 {
		t.Errorf("full cancellation: %v %v", l, e)
	}
}
