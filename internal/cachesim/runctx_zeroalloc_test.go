package cachesim

import (
	"context"
	"testing"

	"gccache/internal/model"
	"gccache/internal/trace"
)

// hitCache hits every access without touching any slices — the
// minimal zero-allocation Cache for isolating runner overhead.
type hitCache struct{}

func (hitCache) Name() string             { return "hit" }
func (hitCache) Access(model.Item) Access { return Access{Hit: true} }
func (hitCache) Contains(model.Item) bool { return true }
func (hitCache) Len() int                 { return 0 }
func (hitCache) Capacity() int            { return 1 }
func (hitCache) Reset()                   {}

// TestRunCtxZeroAllocSteadyState pins the fault-tolerance contract that
// cancellation support stays off the hot path: the per-access replay
// loop of runCtx — context poll every cancelStride accesses included —
// must not allocate. A regression here would show up as allocations
// proportional to trace length.
func TestRunCtxZeroAllocSteadyState(t *testing.T) {
	const universe = 256
	tr := make(trace.Trace, 4*cancelStride)
	for i := range tr {
		tr[i] = model.Item(i % universe)
	}
	rec := NewRecorderBounded("hit", universe)
	ctx := context.Background()
	var c hitCache
	if _, err := runCtx(ctx, c, tr, rec); err != nil { // warm-up
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(20, func() {
		rec.Reset("hit")
		if _, err := runCtx(ctx, c, tr, rec); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("runCtx allocates %.2f allocs per %d-access replay, want 0", avg, len(tr))
	}
}
