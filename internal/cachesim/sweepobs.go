package cachesim

import (
	"fmt"
	"strings"
	"time"
)

// SweepWorkerStats is one worker's share of a SweepObserved run.
type SweepWorkerStats struct {
	// Chunks is how many chunks this worker claimed from the shared
	// counter — the "steal" count; a worker stuck on slow grid points
	// claims fewer.
	Chunks int64
	// Indices is how many grid points this worker processed.
	Indices int64
	// BusyNanos is wall-clock time spent inside fn, in nanoseconds.
	BusyNanos int64
}

// Busy returns the worker's busy time as a duration.
func (w SweepWorkerStats) Busy() time.Duration { return time.Duration(w.BusyNanos) }

// SweepStats collects per-worker engine statistics from SweepObserved.
// The zero value is ready to pass; the sweep resizes Workers itself.
type SweepStats struct {
	// Workers has one slot per launched worker; each worker writes only
	// its own slot, so the slice is safe to read once the sweep returns.
	Workers []SweepWorkerStats
	// Chunk is the chunk size the engine picked for the run.
	Chunk int
	// Quarantined lists the grid points SweepHardened gave up on, sorted
	// by index. Empty for fault-free runs and for the plain sweeps.
	Quarantined []Quarantine
}

// Totals sums the per-worker counters.
func (s *SweepStats) Totals() SweepWorkerStats {
	var t SweepWorkerStats
	for _, w := range s.Workers {
		t.Chunks += w.Chunks
		t.Indices += w.Indices
		t.BusyNanos += w.BusyNanos
	}
	return t
}

// Imbalance returns max/mean of per-worker busy time — 1.0 is a
// perfectly balanced sweep; large values mean a few workers carried the
// run. Returns 0 when nothing was measured.
func (s *SweepStats) Imbalance() float64 {
	if len(s.Workers) == 0 {
		return 0
	}
	var sum, max int64
	for _, w := range s.Workers {
		sum += w.BusyNanos
		if w.BusyNanos > max {
			max = w.BusyNanos
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.Workers))
	return float64(max) / mean
}

// String renders a one-line-per-worker summary plus totals, e.g. for
// the gcserve /sweep page. Timings are wall-clock and nondeterministic;
// do not put this in repro artifacts.
func (s *SweepStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d workers, chunk=%d\n", len(s.Workers), s.Chunk)
	for i, w := range s.Workers {
		fmt.Fprintf(&b, "  worker %d: chunks=%d indices=%d busy=%v\n",
			i, w.Chunks, w.Indices, w.Busy())
	}
	t := s.Totals()
	fmt.Fprintf(&b, "  total: chunks=%d indices=%d busy=%v imbalance=%.2f\n",
		t.Chunks, t.Indices, t.Busy(), s.Imbalance())
	return b.String()
}

// nowNano is the sweep engine's clock. Split out so the hot replay
// paths never touch it: timing happens only inside SweepObserved with a
// non-nil stats target.
func nowNano() int64 { return time.Now().UnixNano() }
