// Package cachesim defines the cache-policy interface of the GC caching
// simulator, the per-run statistics (including the paper's split of hits
// into temporal and spatial), and the trace runner.
//
// The simulator charges cost exactly as Definition 1 of the paper: a hit
// is free; a miss costs one unit regardless of how many items of the
// missed item's block the policy chooses to load.
package cachesim

import (
	"fmt"
	"runtime"
	"sync"

	"gccache/internal/model"
	"gccache/internal/trace"
)

// Access describes the effect of a single request on a cache.
type Access struct {
	// Hit reports whether the requested item was in cache.
	Hit bool
	// Loaded lists the items inserted to serve a miss (the requested item
	// first, then any free siblings from the same block). Empty on hits.
	// The slice may be reused by the cache on the next call; callers that
	// retain it must copy.
	Loaded []model.Item
	// Evicted lists the items removed to make room. The slice may be
	// reused by the cache on the next call.
	Evicted []model.Item
}

// Cache is an online GC cache policy. Implementations own their state;
// the runner only drives requests and aggregates statistics.
//
// Contains must reflect the post-Access state and is what adaptive
// adversaries probe to construct worst-case traces.
type Cache interface {
	// Name identifies the policy (for reports).
	Name() string
	// Access serves one request and returns its effect.
	Access(it model.Item) Access
	// Contains reports whether it is currently cached.
	Contains(it model.Item) bool
	// Len returns the number of cached items.
	Len() int
	// Capacity returns k, the configured maximum number of cached items.
	Capacity() int
	// Reset empties the cache and clears policy state.
	Reset()
}

// Stats aggregates the outcome of running a trace through a cache.
type Stats struct {
	Policy   string
	Accesses int64
	Hits     int64
	// Misses is also the cost: each miss triggers exactly one unit-cost
	// block load.
	Misses int64
	// SpatialHits counts hits to items that were in cache only because an
	// earlier miss on a *different* item of the same block loaded them
	// (the item had not been accessed since that load). All other hits
	// are TemporalHits. SpatialHits + TemporalHits == Hits.
	SpatialHits  int64
	TemporalHits int64
	// ItemsLoaded counts every item insertion (≥ Misses).
	ItemsLoaded int64
	// Evictions counts every item removal.
	Evictions int64
}

// MissRatio returns Misses/Accesses, or 0 for an empty run.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRatio returns Hits/Accesses, or 0 for an empty run.
func (s Stats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cost returns the total load cost charged to the cache (== Misses).
func (s Stats) Cost() int64 { return s.Misses }

// Add accumulates other into s for multi-run aggregation.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.SpatialHits += other.SpatialHits
	s.TemporalHits += other.TemporalHits
	s.ItemsLoaded += other.ItemsLoaded
	s.Evictions += other.Evictions
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: accesses=%d hits=%d (temporal=%d spatial=%d) misses=%d missRatio=%.4f",
		s.Policy, s.Accesses, s.Hits, s.TemporalHits, s.SpatialHits, s.Misses, s.MissRatio())
}

// Recorder incrementally classifies accesses into the Stats fields.
// It tracks which cached items were loaded as free siblings and never
// accessed since, so hits can be split into spatial and temporal exactly
// as §2 of the paper defines them, independent of the policy.
type Recorder struct {
	stats Stats
	// pristine holds items loaded by a miss on a different item and not
	// accessed since; a hit on a pristine item is a spatial hit.
	pristine map[model.Item]struct{}
}

// NewRecorder returns a Recorder for the named policy.
func NewRecorder(policy string) *Recorder {
	return &Recorder{
		stats:    Stats{Policy: policy},
		pristine: make(map[model.Item]struct{}),
	}
}

// Observe records the outcome of one request.
func (r *Recorder) Observe(it model.Item, a Access) {
	r.stats.Accesses++
	if a.Hit {
		r.stats.Hits++
		if _, ok := r.pristine[it]; ok {
			r.stats.SpatialHits++
			delete(r.pristine, it)
		} else {
			r.stats.TemporalHits++
		}
		return
	}
	r.stats.Misses++
	r.stats.ItemsLoaded += int64(len(a.Loaded))
	r.stats.Evictions += int64(len(a.Evicted))
	for _, v := range a.Evicted {
		delete(r.pristine, v)
	}
	for _, l := range a.Loaded {
		if l == it {
			continue
		}
		r.pristine[l] = struct{}{}
	}
	// The requested item itself has now been accessed.
	delete(r.pristine, it)
}

// Stats returns the accumulated statistics.
func (r *Recorder) Stats() Stats { return r.stats }

// NetChanges reconciles a step's load and eviction lists to *net*
// changes: an item that was transiently loaded and evicted (or evicted
// and reloaded) within one access is removed from both lists. Policies
// whose internal mechanics overshoot capacity mid-step call this before
// returning an Access, so that Loaded always means absent→present and
// Evicted always means present→absent.
func NetChanges(loaded, evicted []model.Item) (netLoaded, netEvicted []model.Item) {
	if len(loaded) == 0 || len(evicted) == 0 {
		return loaded, evicted
	}
	inBoth := make(map[model.Item]int, len(evicted))
	for _, e := range evicted {
		inBoth[e]++
	}
	netLoaded = loaded[:0]
	for _, l := range loaded {
		if inBoth[l] > 0 {
			inBoth[l]--
			continue
		}
		netLoaded = append(netLoaded, l)
	}
	netEvicted = evicted[:0]
	for _, e := range evicted {
		// Rebuild evicted with the matched pairs removed; counts in
		// inBoth now hold the *unmatched* evictions per item.
		if n := inBoth[e]; n > 0 {
			inBoth[e]--
			netEvicted = append(netEvicted, e)
		}
	}
	return netLoaded, netEvicted
}

// Run replays tr through c (without resetting it first) and returns the
// statistics. Use c.Reset() beforehand for a cold-start run.
func Run(c Cache, tr trace.Trace) Stats {
	rec := NewRecorder(c.Name())
	for _, it := range tr {
		rec.Observe(it, c.Access(it))
	}
	return rec.Stats()
}

// RunCold resets c and then replays tr.
func RunCold(c Cache, tr trace.Trace) Stats {
	c.Reset()
	return Run(c, tr)
}

// ParallelFor runs fn(i) for i in [0, n) on up to workers goroutines
// (GOMAXPROCS if workers <= 0). It is the sweep engine used by the
// experiment harness; fn must be safe to call concurrently for distinct i.
func ParallelFor(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// RunSeeds replays tr through independently seeded instances of a
// randomized policy and returns the per-seed miss ratios — the input for
// variance reporting on GCM/Marking-style policies whose behaviour
// depends on coin flips.
func RunSeeds(build func(seed int64) Cache, tr trace.Trace, seeds []int64) []float64 {
	out := make([]float64, len(seeds))
	ParallelFor(len(seeds), 0, func(i int) {
		out[i] = RunCold(build(seeds[i]), tr).MissRatio()
	})
	return out
}
