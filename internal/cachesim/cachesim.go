// Package cachesim defines the cache-policy interface of the GC caching
// simulator, the per-run statistics (including the paper's split of hits
// into temporal and spatial), and the trace runner.
//
// The simulator charges cost exactly as Definition 1 of the paper: a hit
// is free; a miss costs one unit regardless of how many items of the
// missed item's block the policy chooses to load.
package cachesim

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"gccache/internal/model"
	"gccache/internal/obs"
	"gccache/internal/trace"
)

// Access describes the effect of a single request on a cache.
type Access struct {
	// Hit reports whether the requested item was in cache.
	Hit bool
	// Loaded lists the items inserted to serve a miss (the requested item
	// first, then any free siblings from the same block). Empty on hits.
	// The slice may be reused by the cache on the next call; callers that
	// retain it must copy.
	Loaded []model.Item
	// Evicted lists the items removed to make room. The slice may be
	// reused by the cache on the next call.
	Evicted []model.Item
}

// Cache is an online GC cache policy. Implementations own their state;
// the runner only drives requests and aggregates statistics.
//
// Contains must reflect the post-Access state and is what adaptive
// adversaries probe to construct worst-case traces.
type Cache interface {
	// Name identifies the policy (for reports).
	Name() string
	// Access serves one request and returns its effect.
	Access(it model.Item) Access
	// Contains reports whether it is currently cached.
	Contains(it model.Item) bool
	// Len returns the number of cached items.
	Len() int
	// Capacity returns k, the configured maximum number of cached items.
	Capacity() int
	// Reset empties the cache and clears policy state.
	Reset()
}

// Instrumented is implemented by caches that can attach an obs.Probe.
// SetProbe(nil) detaches; implementations must keep the nil fast path
// allocation-free (the zero-cost-when-nil rule, see internal/obs).
type Instrumented interface {
	SetProbe(p obs.Probe)
}

// LayerResizable is implemented by layered caches whose item/block
// partition can be repartitioned at runtime (core.IBLP and
// core.AdaptiveIBLP). SetItemLayerTarget(i) moves the item layer to i
// and the block layer to Capacity()−i, enforcing the new occupancy
// bounds immediately (evicting as needed) rather than lazily on future
// admissions — so the layer invariants hold before the next Access.
// Implementations report the move to any attached probe as
// EvLayerResize followed by per-item EvEvict events.
//
// SetItemLayerTarget is not safe for concurrent use with Access;
// callers (the autotune controller's apply path) must serialize with
// the same lock that guards Access.
type LayerResizable interface {
	// ItemLayerTarget returns the current item-layer size target.
	ItemLayerTarget() int
	// SetItemLayerTarget repartitions to an item layer of i items,
	// clamped to [0, Capacity()].
	SetItemLayerTarget(i int)
}

// Stats aggregates the outcome of running a trace through a cache.
type Stats struct {
	Policy   string
	Accesses int64
	Hits     int64
	// Misses is also the cost: each miss triggers exactly one unit-cost
	// block load.
	Misses int64
	// SpatialHits counts hits to items that were in cache only because an
	// earlier miss on a *different* item of the same block loaded them
	// (the item had not been accessed since that load). All other hits
	// are TemporalHits. SpatialHits + TemporalHits == Hits.
	SpatialHits  int64
	TemporalHits int64
	// ItemsLoaded counts every item insertion (≥ Misses).
	ItemsLoaded int64
	// Evictions counts every item removal.
	Evictions int64
}

// MissRatio returns Misses/Accesses, or 0 for an empty run.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRatio returns Hits/Accesses, or 0 for an empty run.
func (s Stats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cost returns the total load cost charged to the cache (== Misses).
func (s Stats) Cost() int64 { return s.Misses }

// Add accumulates other into s for multi-run aggregation.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.SpatialHits += other.SpatialHits
	s.TemporalHits += other.TemporalHits
	s.ItemsLoaded += other.ItemsLoaded
	s.Evictions += other.Evictions
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: accesses=%d hits=%d (temporal=%d spatial=%d) misses=%d missRatio=%.4f",
		s.Policy, s.Accesses, s.Hits, s.TemporalHits, s.SpatialHits, s.Misses, s.MissRatio())
}

// Recorder incrementally classifies accesses into the Stats fields.
// It tracks which cached items were loaded as free siblings and never
// accessed since, so hits can be split into spatial and temporal exactly
// as §2 of the paper defines them, independent of the policy.
//
// NewRecorder tracks pristineness in a map and accepts any item ID;
// NewRecorderBounded swaps the map for a flat bitset over a declared item
// universe, which keeps the replay hot path allocation- and hash-free.
type Recorder struct {
	stats Stats
	// pristine holds items loaded by a miss on a different item and not
	// accessed since; a hit on a pristine item is a spatial hit. nil on
	// the bounded path.
	pristine map[model.Item]struct{}
	// pristineBits is the bounded-universe bitset replacement for
	// pristine; nil on the generic path.
	pristineBits []bool

	// probe, when attached, receives the recorder-view event stream
	// (EvHitTemporal / EvHitSpatial / EvMiss); nil costs one branch.
	probe obs.Probe

	// Streaming distribution state (fixed-size, updated O(1) per access,
	// never allocating): gaps between misses and items per block load.
	sinceMiss int64
	gapHist   logHist
	burstHist logHist
}

// SetProbe attaches p to receive the recorder-view event stream
// (nil detaches). The probe does not affect the accumulated Stats.
func (r *Recorder) SetProbe(p obs.Probe) { r.probe = p }

// MissGapPercentile returns the streaming q-quantile (q in [0,1]) of
// the number of accesses between successive misses — the fault rate of
// §7 seen as a distribution rather than a mean. The estimate is the
// lower bound of the log₂ bucket where the cumulative count crosses q
// (off by at most 2×); it costs O(1) memory regardless of run length.
func (r *Recorder) MissGapPercentile(q float64) int64 { return r.gapHist.percentile(q) }

// MissGapMean returns the exact mean inter-miss gap (0 if no misses).
func (r *Recorder) MissGapMean() float64 { return r.gapHist.mean() }

// LoadBurstPercentile returns the streaming q-quantile of items brought
// in per unit-cost block load (1 = no free siblings, up to B).
func (r *Recorder) LoadBurstPercentile(q float64) int64 { return r.burstHist.percentile(q) }

// LoadBurstMean returns the exact mean items per block load.
func (r *Recorder) LoadBurstMean() float64 { return r.burstHist.mean() }

// logHist is a fixed-size log₂-bucketed histogram: value v lands in
// bucket bits.Len64(v). It is the allocation-free streaming-percentile
// core shared by the recorder's always-on distribution stats (the
// attachable, synchronized variant is obs.Histogram).
type logHist struct {
	buckets [65]int64
	count   int64
	sum     int64
	max     int64
}

//gclint:hotpath
func (h *logHist) record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

func (h *logHist) mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// percentile follows the ceil-rank (nearest-rank) convention of
// obs.Histogram.Percentile: the q-quantile is the bucket of the
// ceil(q·count)-th smallest sample, so the two histograms agree on
// identical data.
func (h *logHist) percentile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			if i == 0 {
				return 0
			}
			return int64(1) << (i - 1)
		}
	}
	return h.max
}

// NewRecorder returns a Recorder for the named policy.
func NewRecorder(policy string) *Recorder {
	return &Recorder{
		stats:    Stats{Policy: policy},
		pristine: make(map[model.Item]struct{}),
	}
}

// NewRecorderBounded returns a Recorder that tracks pristineness in a
// flat bitset over item IDs [0, universe) — no map operations and no
// allocation per access. It falls back to the generic map Recorder when
// universe is non-positive or implausibly large. Observing an item ≥ the
// declared universe panics.
func NewRecorderBounded(policy string, universe int) *Recorder {
	if universe <= 0 || universe > MaxBoundedUniverse {
		return NewRecorder(policy)
	}
	return &Recorder{
		stats:        Stats{Policy: policy},
		pristineBits: make([]bool, universe),
	}
}

// Observe records the outcome of one request.
func (r *Recorder) Observe(it model.Item, a Access) {
	if r.pristineBits != nil {
		r.observeBounded(it, a)
		return
	}
	r.stats.Accesses++
	r.sinceMiss++
	if a.Hit {
		r.stats.Hits++
		if _, ok := r.pristine[it]; ok {
			r.stats.SpatialHits++
			delete(r.pristine, it)
			if r.probe != nil {
				r.probe.Observe(obs.Event{Kind: obs.EvHitSpatial, Item: it})
			}
		} else {
			r.stats.TemporalHits++
			if r.probe != nil {
				r.probe.Observe(obs.Event{Kind: obs.EvHitTemporal, Item: it})
			}
		}
		return
	}
	r.stats.Misses++
	r.stats.ItemsLoaded += int64(len(a.Loaded))
	r.stats.Evictions += int64(len(a.Evicted))
	r.gapHist.record(r.sinceMiss)
	r.sinceMiss = 0
	r.burstHist.record(int64(len(a.Loaded)))
	if r.probe != nil {
		r.probe.Observe(obs.Event{Kind: obs.EvMiss, Item: it})
	}
	for _, v := range a.Evicted {
		delete(r.pristine, v)
	}
	for _, l := range a.Loaded {
		if l == it {
			continue
		}
		r.pristine[l] = struct{}{}
	}
	// The requested item itself has now been accessed.
	delete(r.pristine, it)
}

// observeBounded is Observe on the bitset path; identical classification.
//
//gclint:hotpath
func (r *Recorder) observeBounded(it model.Item, a Access) {
	r.stats.Accesses++
	r.sinceMiss++
	if a.Hit {
		r.stats.Hits++
		if r.pristineBits[it] {
			r.stats.SpatialHits++
			r.pristineBits[it] = false
			if r.probe != nil {
				r.probe.Observe(obs.Event{Kind: obs.EvHitSpatial, Item: it})
			}
		} else {
			r.stats.TemporalHits++
			if r.probe != nil {
				r.probe.Observe(obs.Event{Kind: obs.EvHitTemporal, Item: it})
			}
		}
		return
	}
	r.stats.Misses++
	r.stats.ItemsLoaded += int64(len(a.Loaded))
	r.stats.Evictions += int64(len(a.Evicted))
	r.gapHist.record(r.sinceMiss)
	r.sinceMiss = 0
	r.burstHist.record(int64(len(a.Loaded)))
	if r.probe != nil {
		r.probe.Observe(obs.Event{Kind: obs.EvMiss, Item: it})
	}
	for _, v := range a.Evicted {
		r.pristineBits[v] = false
	}
	for _, l := range a.Loaded {
		if l == it {
			continue
		}
		r.pristineBits[l] = true
	}
	// The requested item itself has now been accessed.
	r.pristineBits[it] = false
}

// Stats returns the accumulated statistics.
func (r *Recorder) Stats() Stats { return r.stats }

// Reset clears the Recorder for reuse under a (possibly new) policy name,
// retaining allocated tracking state and any attached probe.
func (r *Recorder) Reset(policy string) {
	r.stats = Stats{Policy: policy}
	r.sinceMiss = 0
	r.gapHist = logHist{}
	r.burstHist = logHist{}
	if r.pristineBits != nil {
		clear(r.pristineBits)
		return
	}
	clear(r.pristine)
}

// MaxBoundedUniverse caps the item universe the bounded (flat-array)
// simulation paths will allocate for: beyond ~4M items the footprint of
// per-item arrays outweighs their constant-factor advantage and callers
// should use the generic map-based paths.
const MaxBoundedUniverse = 4 << 20

// NetChanges reconciles a step's load and eviction lists to *net*
// changes: an item that was transiently loaded and evicted (or evicted
// and reloaded) within one access is removed from both lists. Policies
// whose internal mechanics overshoot capacity mid-step call this before
// returning an Access, so that Loaded always means absent→present and
// Evicted always means present→absent.
//
// NetChanges allocates a scratch map per call; policies hold a Reconciler
// instead, which owns reusable scratch and nets in-place without
// allocating.
func NetChanges(loaded, evicted []model.Item) (netLoaded, netEvicted []model.Item) {
	if len(loaded) == 0 || len(evicted) == 0 {
		return loaded, evicted
	}
	var r Reconciler
	return r.NetChanges(loaded, evicted)
}

// Reconciler nets loaded/evicted lists (see NetChanges) using owned,
// reusable scratch. The zero value is usable and allocates its map
// scratch on first use; NewReconciler with a positive universe instead
// uses generation-stamped flat arrays indexed by item ID, making the
// netting step allocation- and hash-free on the dense path.
//
// A Reconciler is owned by a single policy instance and is not safe for
// concurrent use.
type Reconciler struct {
	// Generic path: reusable multiset scratch, cleared per call.
	counts map[model.Item]int32
	// Bounded path: net[it].count is valid iff net[it].stamp == gen.
	// Bumping gen invalidates every entry in O(1), so per-call scratch
	// reset costs nothing regardless of universe size. Stamp and count
	// share an 8-byte slot so netting one item touches one cache line,
	// not two — the lists are scattered across the universe, so every
	// touch is a likely miss and halving them is measurable.
	net []netSlot
	gen uint32
}

// netSlot is one item's generation-stamped multiset entry.
type netSlot struct {
	stamp uint32
	count int32
}

// NewReconciler returns a Reconciler for item IDs in [0, universe).
// A non-positive or implausibly large universe yields a generic
// map-scratch Reconciler that accepts any item ID.
func NewReconciler(universe int) *Reconciler {
	if universe <= 0 || universe > MaxBoundedUniverse {
		return &Reconciler{}
	}
	return &Reconciler{net: make([]netSlot, universe)}
}

// NetChanges nets the two lists in place and returns the trimmed slices.
// Semantics are identical to the package-level NetChanges.
//
//gclint:hotpath
func (r *Reconciler) NetChanges(loaded, evicted []model.Item) (netLoaded, netEvicted []model.Item) {
	if len(loaded) == 0 || len(evicted) == 0 {
		return loaded, evicted
	}
	if r.net != nil {
		return r.netBounded(loaded, evicted)
	}
	if r.counts == nil {
		r.counts = make(map[model.Item]int32, len(evicted)) //gclint:allowalloc first-use lazy init, amortized across calls
	} else {
		clear(r.counts)
	}
	for _, e := range evicted {
		r.counts[e]++
	}
	netLoaded = loaded[:0]
	for _, l := range loaded {
		if r.counts[l] > 0 {
			r.counts[l]--
			continue
		}
		netLoaded = append(netLoaded, l)
	}
	netEvicted = evicted[:0]
	for _, e := range evicted {
		// Rebuild evicted with the matched pairs removed; counts now hold
		// the *unmatched* evictions per item.
		if r.counts[e] > 0 {
			r.counts[e]--
			netEvicted = append(netEvicted, e)
		}
	}
	return netLoaded, netEvicted
}

// netBounded is NetChanges on generation-stamped flat arrays.
//
//gclint:hotpath
func (r *Reconciler) netBounded(loaded, evicted []model.Item) (netLoaded, netEvicted []model.Item) {
	r.gen++
	if r.gen == 0 {
		// uint32 wraparound: old stamps could alias the new generation.
		clear(r.net)
		r.gen = 1
	}
	gen := r.gen
	for _, e := range evicted {
		if r.net[e].stamp != gen {
			r.net[e] = netSlot{stamp: gen}
		}
		r.net[e].count++
	}
	netLoaded = loaded[:0]
	for _, l := range loaded {
		if r.net[l].stamp == gen && r.net[l].count > 0 {
			r.net[l].count--
			continue
		}
		netLoaded = append(netLoaded, l)
	}
	netEvicted = evicted[:0]
	for _, e := range evicted {
		// Every evicted item was stamped in the first pass, so the bare
		// count test is safe; counts now hold the unmatched evictions.
		if r.net[e].count > 0 {
			r.net[e].count--
			netEvicted = append(netEvicted, e)
		}
	}
	return netLoaded, netEvicted
}

// Run replays tr through c (without resetting it first) and returns the
// statistics. Use c.Reset() beforehand for a cold-start run.
func Run(c Cache, tr trace.Trace) Stats {
	rec := NewRecorder(c.Name())
	for _, it := range tr {
		rec.Observe(it, c.Access(it))
	}
	return rec.Stats()
}

// RunCold resets c and then replays tr.
func RunCold(c Cache, tr trace.Trace) Stats {
	c.Reset()
	return Run(c, tr)
}

// cancelStride is how many accesses the context-aware runners replay
// between context polls. Polling ctx.Err() neither allocates nor locks,
// but once per access would still put an interface call on the
// replay hot path; once per stride keeps cancellation latency bounded
// (a few microseconds of work) at zero per-access cost. The AllocsPerRun
// regression tests pin the cancellable runners to the same allocation
// budget as the plain ones.
const cancelStride = 4096

// RunCtx is Run with cooperative cancellation: the replay polls ctx
// every cancelStride accesses and, when the context ends, returns the
// statistics accumulated so far together with ctx's error. A completed
// replay returns a nil error; err == nil is the "stats are for the full
// trace" contract.
func RunCtx(ctx context.Context, c Cache, tr trace.Trace) (Stats, error) {
	return runCtx(ctx, c, tr, NewRecorder(c.Name()))
}

// RunColdCtx resets c and then replays tr under ctx.
func RunColdCtx(ctx context.Context, c Cache, tr trace.Trace) (Stats, error) {
	c.Reset()
	return RunCtx(ctx, c, tr)
}

// RunBoundedCtx is RunBounded with cooperative cancellation (see
// RunBounded for the universe contract, RunCtx for the error contract).
func RunBoundedCtx(ctx context.Context, c Cache, tr trace.Trace, universe int) (Stats, error) {
	return runCtx(ctx, c, tr, NewRecorderBounded(c.Name(), universe))
}

// RunColdBoundedCtx resets c and then replays tr under ctx with a
// bounded Recorder.
func RunColdBoundedCtx(ctx context.Context, c Cache, tr trace.Trace, universe int) (Stats, error) {
	c.Reset()
	return RunBoundedCtx(ctx, c, tr, universe)
}

func runCtx(ctx context.Context, c Cache, tr trace.Trace, rec *Recorder) (Stats, error) {
	for i, it := range tr {
		if i&(cancelStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return rec.Stats(), err
			}
		}
		rec.Observe(it, c.Access(it))
	}
	return rec.Stats(), nil
}

// RunBounded is Run with a bounded-universe Recorder: item IDs in tr —
// and every item c may load, including block siblings of requested items
// (expand with model.ItemUniverse) — must lie in [0, universe).
// Statistics are identical to Run's; only the tracking machinery differs.
func RunBounded(c Cache, tr trace.Trace, universe int) Stats {
	rec := NewRecorderBounded(c.Name(), universe)
	for _, it := range tr {
		rec.Observe(it, c.Access(it))
	}
	return rec.Stats()
}

// RunColdBounded resets c and then replays tr with a bounded Recorder.
func RunColdBounded(c Cache, tr trace.Trace, universe int) Stats {
	c.Reset()
	return RunBounded(c, tr, universe)
}

// RunProbed replays tr through c with the probe p attached to both the
// policy (when it implements Instrumented) and the Recorder, so p sees
// the complete event stream: policy-view layer hits, block loads, item
// loads/evictions, marks and rebalances, plus the recorder-view
// temporal/spatial/miss classification. The probe is detached from the
// cache before returning. Statistics are identical to Run's — probes
// observe, they never steer (the differential tests assert this).
func RunProbed(c Cache, tr trace.Trace, p obs.Probe) Stats {
	return runProbed(c, tr, p, NewRecorder(c.Name()))
}

// RunColdProbed resets c and then replays tr with p attached.
func RunColdProbed(c Cache, tr trace.Trace, p obs.Probe) Stats {
	c.Reset()
	return RunProbed(c, tr, p)
}

// RunProbedBounded is RunProbed with a bounded-universe Recorder (see
// RunBounded for the universe contract).
func RunProbedBounded(c Cache, tr trace.Trace, universe int, p obs.Probe) Stats {
	return runProbed(c, tr, p, NewRecorderBounded(c.Name(), universe))
}

// RunColdProbedBounded resets c and then replays tr with p attached and
// a bounded Recorder.
func RunColdProbedBounded(c Cache, tr trace.Trace, universe int, p obs.Probe) Stats {
	c.Reset()
	return RunProbedBounded(c, tr, universe, p)
}

// RunProbedCtx is RunProbed with cooperative cancellation (see RunCtx
// for the error contract). The probe is detached before returning even
// when the replay is cut short.
func RunProbedCtx(ctx context.Context, c Cache, tr trace.Trace, p obs.Probe) (Stats, error) {
	return runProbedCtx(ctx, c, tr, p, NewRecorder(c.Name()))
}

// RunColdProbedCtx resets c and then replays tr with p attached under ctx.
func RunColdProbedCtx(ctx context.Context, c Cache, tr trace.Trace, p obs.Probe) (Stats, error) {
	c.Reset()
	return RunProbedCtx(ctx, c, tr, p)
}

// RunProbedBoundedCtx is RunProbedBounded with cooperative cancellation.
func RunProbedBoundedCtx(ctx context.Context, c Cache, tr trace.Trace, universe int, p obs.Probe) (Stats, error) {
	return runProbedCtx(ctx, c, tr, p, NewRecorderBounded(c.Name(), universe))
}

// RunColdProbedBoundedCtx resets c and then replays tr with p attached
// and a bounded Recorder under ctx.
func RunColdProbedBoundedCtx(ctx context.Context, c Cache, tr trace.Trace, universe int, p obs.Probe) (Stats, error) {
	c.Reset()
	return RunProbedBoundedCtx(ctx, c, tr, universe, p)
}

func runProbed(c Cache, tr trace.Trace, p obs.Probe, rec *Recorder) Stats {
	if in, ok := c.(Instrumented); ok && p != nil {
		in.SetProbe(p)
		defer in.SetProbe(nil)
	}
	rec.SetProbe(p)
	for _, it := range tr {
		rec.Observe(it, c.Access(it))
	}
	return rec.Stats()
}

func runProbedCtx(ctx context.Context, c Cache, tr trace.Trace, p obs.Probe, rec *Recorder) (Stats, error) {
	if in, ok := c.(Instrumented); ok && p != nil {
		in.SetProbe(p)
		defer in.SetProbe(nil)
	}
	rec.SetProbe(p)
	for i, it := range tr {
		if i&(cancelStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return rec.Stats(), err
			}
		}
		rec.Observe(it, c.Access(it))
	}
	return rec.Stats(), nil
}

// ParallelFor runs fn(i) for i in [0, n) on up to workers goroutines
// (GOMAXPROCS if workers <= 0). It is the sweep engine used by the
// experiment harness; fn must be safe to call concurrently for distinct
// i. Indices are handed out in chunks through a shared atomic counter, so
// there is no per-index channel operation and idle workers steal the
// remaining range. If fn panics, the panic is re-raised on the caller's
// goroutine after all workers have stopped.
func ParallelFor(n, workers int, fn func(i int)) {
	Sweep(n, workers, func() struct{} { return struct{}{} },
		func(i int, _ struct{}) { fn(i) })
}

// Sweep runs fn(i, w) for i in [0, n) on up to workers goroutines
// (GOMAXPROCS if workers <= 0), where each worker goroutine owns one
// state value built by newWorker. It is the pooled-state generalization
// of ParallelFor: a worker's state (typically a policy cache reset
// between grid points, or reusable scratch) is reused across every index
// that worker processes, so a sweep over a large grid constructs only
// O(workers) states instead of O(n).
//
// Work is distributed in chunks via an atomic counter (work-stealing by
// range). A panic in fn or newWorker stops the sweep — remaining chunks
// are abandoned — and is re-raised on the caller's goroutine once every
// worker has stopped.
func Sweep[W any](n, workers int, newWorker func() W, fn func(i int, w W)) {
	// Background contexts never cancel, so the error is always nil.
	_ = SweepObservedCtx(context.Background(), n, workers, nil, newWorker, fn)
}

// SweepCtx is Sweep with cooperative cancellation: workers poll ctx
// between chunks and stop claiming new work once it ends, so a
// cancelled sweep returns within one chunk's worth of grid points. It
// returns ctx's error when the sweep was cut short and nil when every
// index ran. Indices that did run always ran to completion — there are
// no partially executed grid points to reason about.
func SweepCtx[W any](ctx context.Context, n, workers int, newWorker func() W, fn func(i int, w W)) error {
	return SweepObservedCtx(ctx, n, workers, nil, newWorker, fn)
}

// SweepObserved is Sweep with engine observability: when st is non-nil
// it is resized to one slot per launched worker and filled with that
// worker's chunk ("steal") count, index count, and busy time, so grid
// imbalance and stealing behaviour can be read off a run instead of
// guessed. A nil st measures nothing and times nothing — Sweep calls
// this with nil, so uninstrumented sweeps stay exactly as cheap as
// before. The observed numbers are wall-clock measurements and vary run
// to run; they must not feed any repro artifact (see the determinism
// analyzer's rules).
func SweepObserved[W any](n, workers int, st *SweepStats, newWorker func() W, fn func(i int, w W)) {
	_ = SweepObservedCtx(context.Background(), n, workers, st, newWorker, fn)
}

// SweepObservedCtx is the engine core behind every sweep variant:
// SweepObserved with cooperative cancellation. Workers poll ctx before
// claiming each chunk — never mid-chunk, so a claimed grid point always
// runs to completion and cancellation latency is bounded by one chunk.
// The return is nil when every index ran and ctx's error when the sweep
// stopped early; either way st (when non-nil) reflects the work that
// actually happened.
func SweepObservedCtx[W any](ctx context.Context, n, workers int, st *SweepStats, newWorker func() W, fn func(i int, w W)) error {
	if n <= 0 {
		if st != nil {
			st.Workers = st.Workers[:0]
		}
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Chunks balance stealing granularity against counter contention:
	// several chunks per worker so uneven grid points still spread, but
	// far fewer atomic operations than one per index.
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	if st != nil {
		st.Workers = make([]SweepWorkerStats, workers)
		st.Chunk = chunk
	}
	if workers <= 1 {
		w := newWorker()
		var slot *SweepWorkerStats
		if st != nil {
			slot = &st.Workers[0]
		}
		// Walk chunk by chunk (even unobserved) so cancellation is
		// checked at the engine's chunk granularity, like the parallel
		// path.
		for start := 0; start < n; start += chunk {
			if err := ctx.Err(); err != nil {
				return err
			}
			end := start + chunk
			if end > n {
				end = n
			}
			if slot == nil {
				for i := start; i < end; i++ {
					fn(i, w)
				}
				continue
			}
			t0 := nowNano()
			for i := start; i < end; i++ {
				fn(i, w)
			}
			slot.Chunks++
			slot.Indices += int64(end - start)
			slot.BusyNanos += nowNano() - t0
		}
		return nil
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  atomic.Bool
		panicVal  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicVal = p })
					panicked.Store(true)
				}
			}()
			sweepWorker(ctx, n, chunk, &next, &panicked, st, worker, newWorker(), fn)
		}(w)
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	// Claims happen only on the way into processing a chunk, so a fully
	// claimed range means every index ran even if ctx has since ended.
	if next.Load() < int64(n) {
		return ctx.Err()
	}
	return nil
}

// sweepWorker drains chunks from the shared counter, recording
// per-worker engine stats into its own st.Workers slot when observed.
// It stops claiming when the sweep panicked elsewhere or ctx ended.
func sweepWorker[W any](ctx context.Context, n, chunk int, next *atomic.Int64, panicked *atomic.Bool,
	st *SweepStats, worker int, w W, fn func(i int, w W)) {
	for {
		if panicked.Load() || ctx.Err() != nil {
			return
		}
		start := next.Add(int64(chunk)) - int64(chunk)
		if start >= int64(n) {
			return
		}
		end := start + int64(chunk)
		if end > int64(n) {
			end = int64(n)
		}
		if st == nil {
			for i := start; i < end; i++ {
				fn(int(i), w)
			}
			continue
		}
		t0 := nowNano()
		for i := start; i < end; i++ {
			fn(int(i), w)
		}
		slot := &st.Workers[worker]
		slot.Chunks++
		slot.Indices += end - start
		slot.BusyNanos += nowNano() - t0
	}
}

// SweepCaches runs fn(i, c) for every grid point i in [0, n) with
// per-worker pooled caches: each worker builds one cache with build and
// the engine calls c.Reset() before every point, so a sweep constructs
// O(workers) caches instead of n. Policies whose behaviour depends on a
// seed should be re-seeded inside fn (see Reseeder) to keep results
// independent of which worker serves which point.
func SweepCaches(n, workers int, build func() Cache, fn func(i int, c Cache)) {
	Sweep(n, workers, build, func(i int, c Cache) {
		c.Reset()
		fn(i, c)
	})
}

// SweepCachesCtx is SweepCaches with cooperative cancellation; see
// SweepObservedCtx for the cancellation contract.
func SweepCachesCtx(ctx context.Context, n, workers int, build func() Cache, fn func(i int, c Cache)) error {
	return SweepCtx(ctx, n, workers, build, func(i int, c Cache) {
		c.Reset()
		fn(i, c)
	})
}

// Reseeder is implemented by randomized policies whose coin flips can be
// restarted. Reseed(seed) followed by Reset must leave the policy
// indistinguishable from a freshly constructed instance with that seed —
// the property that lets sweep engines reuse one cache across grid
// points without changing any measured number.
type Reseeder interface {
	Reseed(seed int64)
}

// RunSeeds replays tr through independently seeded instances of a
// randomized policy and returns the per-seed miss ratios — the input for
// variance reporting on GCM/Marking-style policies whose behaviour
// depends on coin flips. Policies implementing Reseeder are built once
// per worker and re-seeded per point; others are rebuilt per point.
func RunSeeds(build func(seed int64) Cache, tr trace.Trace, seeds []int64) []float64 {
	out, _ := RunSeedsCtx(context.Background(), build, tr, seeds)
	return out
}

// RunSeedsCtx is RunSeeds with cooperative cancellation. On early stop
// it returns ctx's error alongside the partially filled slice; entries
// for grid points that never ran are zero.
func RunSeedsCtx(ctx context.Context, build func(seed int64) Cache, tr trace.Trace, seeds []int64) ([]float64, error) {
	out := make([]float64, len(seeds))
	type worker struct{ cache Cache }
	err := SweepCtx(ctx, len(seeds), 0, func() *worker { return &worker{} }, func(i int, w *worker) {
		c := w.cache
		if c == nil {
			c = build(seeds[i])
			if _, ok := c.(Reseeder); ok {
				w.cache = c // reusable: future points re-seed instead of rebuild
			}
		} else {
			c.(Reseeder).Reseed(seeds[i])
		}
		out[i] = RunCold(c, tr).MissRatio()
	})
	return out, err
}
