package cachesim

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestSweepObservedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		var st SweepStats
		var hits atomic.Int64
		seen := make([]atomic.Bool, 1000)
		SweepObserved(len(seen), workers, &st, func() int { return 0 }, func(i int, _ int) {
			if seen[i].Swap(true) {
				t.Errorf("index %d visited twice", i)
			}
			hits.Add(1)
		})
		if hits.Load() != int64(len(seen)) {
			t.Fatalf("workers=%d: %d calls, want %d", workers, hits.Load(), len(seen))
		}
		tot := st.Totals()
		if tot.Indices != int64(len(seen)) {
			t.Errorf("workers=%d: stats count %d indices, want %d", workers, tot.Indices, len(seen))
		}
		if tot.Chunks < int64(workers) {
			t.Errorf("workers=%d: only %d chunks recorded", workers, tot.Chunks)
		}
		if len(st.Workers) != workers {
			t.Errorf("workers=%d: %d worker slots", workers, len(st.Workers))
		}
		if st.Chunk < 1 {
			t.Errorf("workers=%d: chunk %d", workers, st.Chunk)
		}
	}
}

func TestSweepObservedNilStatsAndEmpty(t *testing.T) {
	n := 0
	SweepObserved(100, 2, nil, func() *int { return &n }, func(i int, _ *int) {})
	st := SweepStats{Workers: make([]SweepWorkerStats, 3)}
	SweepObserved(0, 2, &st, func() int { return 0 }, func(i int, _ int) {
		t.Error("fn called for empty range")
	})
	if len(st.Workers) != 0 {
		t.Errorf("empty sweep left %d worker slots", len(st.Workers))
	}
}

func TestSweepStatsString(t *testing.T) {
	var st SweepStats
	SweepObserved(256, 2, &st, func() int { return 0 }, func(i int, _ int) {})
	s := st.String()
	for _, want := range []string{"sweep: 2 workers", "worker 0:", "worker 1:", "total:", "imbalance="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	if im := st.Imbalance(); im != 0 && im < 1 {
		t.Errorf("imbalance %v below 1 with nonzero busy time", im)
	}
}
