package cachesim

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Quarantine records one grid point the hardened sweep gave up on: the
// point panicked on every allowed attempt, so its result is missing
// while the rest of the sweep completed normally.
type Quarantine struct {
	// Index is the quarantined grid point.
	Index int
	// Attempts is how many times the point was tried (1 + retries).
	Attempts int
	// Panic is the recovered value of the final panic.
	Panic any
}

func (q Quarantine) String() string {
	return fmt.Sprintf("index %d quarantined after %d attempt(s): %v", q.Index, q.Attempts, q.Panic)
}

// RetryPolicy configures how SweepHardened retries a panicking grid
// point. The zero value means no retries: the first panic quarantines
// the point.
type RetryPolicy struct {
	// MaxRetries is how many extra attempts a panicking point gets after
	// its first failure.
	MaxRetries int
	// Backoff is the pause before the first retry; it doubles per
	// subsequent retry, capped at MaxBackoff. Zero retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff. Zero means 16×Backoff.
	MaxBackoff time.Duration
	// Rebuild discards the worker's pooled state and builds a fresh one
	// before each retry. The default (false) reuses the pooled worker —
	// callbacks are expected to Reset/Reseed their state per point, which
	// the conformance suite certifies recovers from a mid-trace panic.
	Rebuild bool
}

func (r RetryPolicy) backoffFor(retry int) time.Duration {
	if r.Backoff <= 0 {
		return 0
	}
	max := r.MaxBackoff
	if max <= 0 {
		max = 16 * r.Backoff
	}
	d := r.Backoff
	for i := 0; i < retry && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// SweepHardened runs a sweep that survives panicking grid points: a
// panic in fn is recovered, the point is retried per the policy, and a
// point that keeps failing is quarantined — recorded and skipped — so
// one poisoned input costs one grid point, not the whole sweep.
//
// The returned quarantine list is sorted by index and also stored in
// st.Quarantined when st is non-nil. The error is non-nil only when ctx
// ended before every point completed or was quarantined. When fn is
// deterministic per index and faults are transient (retries succeed),
// the sweep's results are byte-identical to a fault-free run.
func SweepHardened[W any](ctx context.Context, n, workers int, retry RetryPolicy, st *SweepStats,
	newWorker func() W, fn func(i int, w W)) ([]Quarantine, error) {
	var (
		mu          sync.Mutex
		quarantined []Quarantine
	)
	type hardWorker struct{ w W }
	err := SweepObservedCtx(ctx, n, workers, st, func() *hardWorker {
		return &hardWorker{w: newWorker()}
	}, func(i int, hw *hardWorker) {
		for attempt := 0; ; attempt++ {
			p := runRecovered(i, hw.w, fn)
			if p == nil {
				return
			}
			if attempt >= retry.MaxRetries {
				mu.Lock()
				quarantined = append(quarantined, Quarantine{Index: i, Attempts: attempt + 1, Panic: p}) //gclint:sharedok under mu; sorted after the sweep
				mu.Unlock()
				return
			}
			if retry.Rebuild {
				hw.w = newWorker()
			}
			if d := retry.backoffFor(attempt); d > 0 {
				time.Sleep(d)
			}
		}
	})
	sort.Slice(quarantined, func(a, b int) bool { return quarantined[a].Index < quarantined[b].Index })
	if st != nil {
		st.Quarantined = quarantined
	}
	return quarantined, err
}

// runRecovered runs fn(i, w) and returns the recovered panic value, or
// nil on success. Split out so the recover scope is exactly one attempt.
func runRecovered[W any](i int, w W, fn func(i int, w W)) (p any) {
	defer func() { p = recover() }()
	fn(i, w)
	return nil
}
