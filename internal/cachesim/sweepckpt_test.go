package cachesim

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"gccache/internal/checkpoint"
)

func ckptResult(i int) []byte {
	var b []byte
	return binary.AppendUvarint(b, uint64(i)*13+7)
}

func TestSweepCheckpointedNoPathRuns(t *testing.T) {
	got, err := SweepCheckpointed(context.Background(), 100, 4, SweepCheckpointConfig{},
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) []byte { return ckptResult(i) })
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if !bytes.Equal(r, ckptResult(i)) {
			t.Fatalf("index %d result %v", i, r)
		}
	}
}

func TestSweepCheckpointedResumeIsByteIdentical(t *testing.T) {
	const n = 500
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	cfg := SweepCheckpointConfig{Path: path, Every: 16, Hash: 0xfeed}

	// Uninterrupted reference run (no checkpointing involved).
	want, err := SweepCheckpointed(context.Background(), n, 4, SweepCheckpointConfig{},
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) []byte { return ckptResult(i) })
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel partway through.
	ctx, cancel := context.WithCancel(context.Background())
	done := 0
	_, err = SweepCheckpointed(ctx, n, 1, cfg,
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) []byte {
			done++
			if done == n/3 {
				cancel()
			}
			return ckptResult(i)
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run err = %v, want context.Canceled", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint written before cancellation: %v", err)
	}

	// Resume: the restored indices must be skipped, the rest computed,
	// and the assembled results byte-identical to the reference.
	var recomputed atomic.Int64
	got, err := SweepCheckpointed(context.Background(), n, 4, cfg,
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) []byte {
			recomputed.Add(1)
			return ckptResult(i)
		})
	if err != nil {
		t.Fatal(err)
	}
	if recomputed.Load() >= n {
		t.Errorf("resume recomputed all %d indices — snapshot ignored", recomputed.Load())
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("index %d: resumed %v, uninterrupted %v", i, got[i], want[i])
		}
	}

	// The final snapshot must now cover all n indices.
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.MetaInt("done", 0) != n {
		t.Errorf("final snapshot done = %d, want %d", snap.MetaInt("done", 0), n)
	}
}

func TestSweepCheckpointedRejectsMismatchedSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	run := func(n int, hash int64) error {
		_, err := SweepCheckpointed(context.Background(), n, 1,
			SweepCheckpointConfig{Path: path, Hash: hash},
			func() struct{} { return struct{}{} },
			func(i int, _ struct{}) []byte { return ckptResult(i) })
		return err
	}
	if err := run(50, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(60, 1); err == nil {
		t.Error("snapshot for n=50 accepted by n=60 sweep")
	}
	if err := run(50, 2); err == nil {
		t.Error("snapshot with hash 1 accepted by hash-2 sweep")
	}
	if err := run(50, 1); err != nil {
		t.Errorf("matching resume rejected: %v", err)
	}
}

func TestSweepCheckpointedRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	if _, err := SweepCheckpointed(context.Background(), 20, 1,
		SweepCheckpointConfig{Path: path},
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) []byte { return ckptResult(i) }); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := SweepCheckpointed(context.Background(), 20, 1,
		SweepCheckpointConfig{Path: path},
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) []byte { return ckptResult(i) }); err == nil {
		t.Fatal("corrupt snapshot silently accepted")
	}
}

func TestSweepCheckpointedEmptyResultIsRestored(t *testing.T) {
	// A point whose fn legitimately returns nil/empty must still count as
	// done in the snapshot, not be re-run forever.
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	cfg := SweepCheckpointConfig{Path: path, Every: 1}
	if _, err := SweepCheckpointed(context.Background(), 5, 1, cfg,
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) []byte { return nil }); err != nil {
		t.Fatal(err)
	}
	ran := 0
	got, err := SweepCheckpointed(context.Background(), 5, 1, cfg,
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) []byte { ran++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Errorf("resume re-ran %d empty-result indices", ran)
	}
	for i, r := range got {
		if r == nil || len(r) != 0 {
			t.Errorf("index %d restored as %v, want empty non-nil", i, r)
		}
	}
}

func TestStatsCodecRoundTrip(t *testing.T) {
	in := []Stats{
		{Policy: "lru", Accesses: 100, Hits: 60, Misses: 40, SpatialHits: 10,
			TemporalHits: 50, ItemsLoaded: 45, Evictions: 30},
		{Policy: "", Accesses: -1},
		{Policy: "gcm/k=32"},
	}
	var enc []byte
	for _, s := range in {
		enc = AppendStats(enc, s)
	}
	rest := enc
	for i, want := range in {
		var got Stats
		var err error
		got, rest, err = DecodeStats(rest)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
	// Truncations error out, never panic.
	for n := 0; n < len(enc); n++ {
		rest := enc[:n]
		for len(rest) > 0 {
			var err error
			if _, rest, err = DecodeStats(rest); err != nil {
				break
			}
		}
	}
}
