package cachesim

import (
	"sync/atomic"
	"testing"

	"gccache/internal/model"
	"gccache/internal/trace"
)

// fakeCache is a scripted cache for exercising the Recorder and runner.
type fakeCache struct {
	script  []Access
	pos     int
	resets  int
	present map[model.Item]bool
}

func (f *fakeCache) Name() string { return "fake" }
func (f *fakeCache) Access(it model.Item) Access {
	a := f.script[f.pos]
	f.pos++
	return a
}
func (f *fakeCache) Contains(it model.Item) bool { return f.present[it] }
func (f *fakeCache) Len() int                    { return len(f.present) }
func (f *fakeCache) Capacity() int               { return 4 }
func (f *fakeCache) Reset()                      { f.resets++ }

func TestRecorderSplitsSpatialAndTemporalHits(t *testing.T) {
	rec := NewRecorder("p")
	// Miss on 0 loads {0,1,2}: 1 and 2 become pristine.
	rec.Observe(0, Access{Loaded: []model.Item{0, 1, 2}})
	// Hit on 1: spatial (loaded by 0's miss, never accessed since).
	rec.Observe(1, Access{Hit: true})
	// Hit on 1 again: temporal now.
	rec.Observe(1, Access{Hit: true})
	// Hit on 0: temporal (0 was the requested item of its load).
	rec.Observe(0, Access{Hit: true})
	s := rec.Stats()
	if s.Accesses != 4 || s.Hits != 3 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SpatialHits != 1 || s.TemporalHits != 2 {
		t.Errorf("spatial=%d temporal=%d, want 1/2", s.SpatialHits, s.TemporalHits)
	}
	if s.ItemsLoaded != 3 {
		t.Errorf("ItemsLoaded = %d, want 3", s.ItemsLoaded)
	}
}

func TestRecorderEvictionClearsPristine(t *testing.T) {
	rec := NewRecorder("p")
	rec.Observe(0, Access{Loaded: []model.Item{0, 1}})
	// Evict 1 (pristine) on some other miss; then a later load of 1 by a
	// miss on 2 makes it pristine again.
	rec.Observe(5, Access{Loaded: []model.Item{5}, Evicted: []model.Item{1}})
	rec.Observe(2, Access{Loaded: []model.Item{2, 1}})
	rec.Observe(1, Access{Hit: true})
	s := rec.Stats()
	if s.SpatialHits != 1 {
		t.Errorf("SpatialHits = %d, want 1", s.SpatialHits)
	}
	if s.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", s.Evictions)
	}
}

func TestRecorderRequestedItemNotPristine(t *testing.T) {
	rec := NewRecorder("p")
	rec.Observe(3, Access{Loaded: []model.Item{3}})
	rec.Observe(3, Access{Hit: true})
	if s := rec.Stats(); s.SpatialHits != 0 || s.TemporalHits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestStatsRatiosAndAdd(t *testing.T) {
	s := Stats{Accesses: 10, Hits: 7, Misses: 3}
	if s.MissRatio() != 0.3 || s.HitRatio() != 0.7 {
		t.Errorf("ratios = %v %v", s.MissRatio(), s.HitRatio())
	}
	if s.Cost() != 3 {
		t.Errorf("Cost = %d", s.Cost())
	}
	var zero Stats
	if zero.MissRatio() != 0 || zero.HitRatio() != 0 {
		t.Error("zero stats ratios nonzero")
	}
	s2 := Stats{Accesses: 5, Hits: 1, Misses: 4, SpatialHits: 1}
	s.Add(s2)
	if s.Accesses != 15 || s.Misses != 7 || s.SpatialHits != 1 {
		t.Errorf("after Add: %+v", s)
	}
}

func TestRunAndRunCold(t *testing.T) {
	f := &fakeCache{script: []Access{
		{Loaded: []model.Item{1}},
		{Hit: true},
	}}
	s := Run(f, trace.Trace{1, 1})
	if s.Policy != "fake" || s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	f2 := &fakeCache{script: []Access{{Hit: true}}}
	RunCold(f2, trace.Trace{9})
	if f2.resets != 1 {
		t.Errorf("RunCold resets = %d, want 1", f2.resets)
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var sum atomic.Int64
		n := 100
		ParallelFor(n, workers, func(i int) { sum.Add(int64(i)) })
		want := int64(n * (n - 1) / 2)
		if sum.Load() != want {
			t.Errorf("workers=%d: sum = %d, want %d", workers, sum.Load(), want)
		}
	}
}

func TestParallelForZeroN(t *testing.T) {
	called := false
	ParallelFor(0, 4, func(int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Policy: "x", Accesses: 2, Hits: 1, Misses: 1, TemporalHits: 1}
	if got := s.String(); got == "" {
		t.Error("empty String()")
	}
}

func TestRunSeeds(t *testing.T) {
	tr := trace.Trace{1, 2, 3, 1, 2, 3}
	// A deterministic "randomized" policy: seed is ignored, so all runs
	// agree.
	build := func(seed int64) Cache {
		return &fakeDeterministic{}
	}
	ratios := RunSeeds(build, tr, []int64{1, 2, 3})
	if len(ratios) != 3 {
		t.Fatalf("ratios = %v", ratios)
	}
	for _, r := range ratios {
		if r != 1 {
			t.Errorf("ratio = %v, want 1 (always misses)", r)
		}
	}
}

// fakeDeterministic misses every access.
type fakeDeterministic struct{ n int }

func (f *fakeDeterministic) Name() string { return "fake-det" }
func (f *fakeDeterministic) Access(it model.Item) Access {
	return Access{Loaded: []model.Item{it}, Evicted: []model.Item{it + 1000}}
}
func (f *fakeDeterministic) Contains(model.Item) bool { return false }
func (f *fakeDeterministic) Len() int                 { return 0 }
func (f *fakeDeterministic) Capacity() int            { return 1 }
func (f *fakeDeterministic) Reset()                   {}
