package cachesim

import (
	"fmt"

	"gccache/internal/model"
)

// Validator wraps a Cache and checks, on every access, that the policy's
// observable behaviour is a legal execution of the paper's Definition 1:
//
//   - a hit is reported iff the item was present (per the validator's
//     shadow copy of the contents), and no loads accompany it (loads cost
//     a unit; hits are free);
//   - on a miss, the loaded set contains the requested item, lies
//     entirely within the requested item's block, and is disjoint from
//     the current contents (Loaded/Evicted report *net* changes — see
//     NetChanges);
//   - evicted items were present, and the requested item is never evicted
//     by its own access (demand caching);
//   - the contents never exceed the declared capacity, and the wrapped
//     cache's Contains/Len agree with the shadow copy.
//
// The first violation is latched in Err; subsequent accesses pass
// through. Wrap any policy with NewValidator in tests to certify it
// against the model.
type Validator struct {
	inner    Cache
	geo      model.Geometry
	shadow   map[model.Item]struct{}
	err      error
	accesses int64
}

var _ Cache = (*Validator)(nil)

// NewValidator wraps c for model-conformance checking under geo.
func NewValidator(c Cache, geo model.Geometry) *Validator {
	return &Validator{
		inner:  c,
		geo:    geo,
		shadow: make(map[model.Item]struct{}, c.Capacity()),
	}
}

// Err returns the first recorded violation, or nil.
func (v *Validator) Err() error { return v.err }

func (v *Validator) failf(format string, args ...any) {
	if v.err == nil {
		v.err = fmt.Errorf("cachesim: access %d (%s): %s",
			v.accesses, v.inner.Name(), fmt.Sprintf(format, args...))
	}
}

// Name implements Cache.
func (v *Validator) Name() string { return v.inner.Name() }

// Access implements Cache, checking the inner policy's step.
func (v *Validator) Access(it model.Item) Access {
	v.accesses++
	_, wasPresent := v.shadow[it]
	a := v.inner.Access(it)

	if a.Hit != wasPresent {
		v.failf("hit=%v but item %d present=%v", a.Hit, it, wasPresent)
	}
	if a.Hit && len(a.Loaded) > 0 {
		v.failf("loads on a hit: %v", a.Loaded)
	}
	if !a.Hit {
		blk := v.geo.BlockOf(it)
		foundSelf := false
		for _, l := range a.Loaded {
			if l == it {
				foundSelf = true
			}
			if v.geo.BlockOf(l) != blk {
				v.failf("loaded %d outside requested block %d", l, blk)
			}
			if _, dup := v.shadow[l]; dup {
				v.failf("loaded %d already present (not a net change)", l)
			}
		}
		if !foundSelf {
			v.failf("loaded set %v missing requested item %d", a.Loaded, it)
		}
	}
	for _, e := range a.Evicted {
		if e == it {
			v.failf("requested item %d evicted by its own access", it)
		}
		if _, ok := v.shadow[e]; !ok {
			v.failf("evicted %d was not present (not a net change)", e)
		}
		delete(v.shadow, e)
	}
	for _, l := range a.Loaded {
		v.shadow[l] = struct{}{}
	}
	if _, ok := v.shadow[it]; !ok {
		v.failf("requested item %d not resident after its access (demand caching)", it)
	}
	if len(v.shadow) > v.inner.Capacity() {
		v.failf("contents %d exceed capacity %d", len(v.shadow), v.inner.Capacity())
	}
	// Cross-check the wrapped cache's own view.
	if !v.inner.Contains(it) {
		v.failf("Contains(%d) false right after it was served", it)
	}
	if got, want := v.inner.Len(), len(v.shadow); got != want {
		v.failf("Len()=%d disagrees with shadow %d", got, want)
	}
	return a
}

// Contains implements Cache.
func (v *Validator) Contains(it model.Item) bool { return v.inner.Contains(it) }

// Len implements Cache.
func (v *Validator) Len() int { return v.inner.Len() }

// Capacity implements Cache.
func (v *Validator) Capacity() int { return v.inner.Capacity() }

// Reset implements Cache.
func (v *Validator) Reset() {
	v.inner.Reset()
	clear(v.shadow)
}
