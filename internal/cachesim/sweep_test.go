package cachesim

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"gccache/internal/model"
	"gccache/internal/trace"
)

func TestParallelForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				p := recover()
				if p != "boom-37" {
					t.Errorf("workers=%d: recovered %v, want boom-37", workers, p)
				}
			}()
			ParallelFor(100, workers, func(i int) {
				if i == 37 {
					panic("boom-37")
				}
			})
			t.Errorf("workers=%d: ParallelFor returned instead of panicking", workers)
		}()
	}
}

func TestSweepNewWorkerPanicPropagates(t *testing.T) {
	defer func() {
		if p := recover(); p != "bad worker" {
			t.Errorf("recovered %v, want bad worker", p)
		}
	}()
	Sweep(10, 4, func() int { panic("bad worker") }, func(int, int) {})
}

func TestSweepPoolsWorkerState(t *testing.T) {
	const n = 1000
	var built atomic.Int64
	visited := make([]atomic.Int32, n)
	workers := 4
	Sweep(n, workers, func() *int {
		built.Add(1)
		v := 0
		return &v
	}, func(i int, w *int) {
		*w++ // worker-local, no synchronization needed
		visited[i].Add(1)
	})
	if got := built.Load(); got < 1 || got > int64(workers) {
		t.Errorf("built %d worker states, want 1..%d", got, workers)
	}
	for i := range visited {
		if visited[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, visited[i].Load())
		}
	}
}

func TestSweepSingleWorkerRunsInOrder(t *testing.T) {
	var got []int
	Sweep(5, 1, func() struct{} { return struct{}{} }, func(i int, _ struct{}) {
		got = append(got, i)
	})
	for i, v := range got {
		if v != i {
			t.Fatalf("serial sweep order %v", got)
		}
	}
}

// resetCounter counts Reset calls; used to prove SweepCaches resets the
// pooled cache before every grid point.
type resetCounter struct {
	fakeDeterministic
	resets atomic.Int64
}

func (r *resetCounter) Reset() { r.resets.Add(1) }

func TestSweepCachesResetsEveryPoint(t *testing.T) {
	const n = 120
	var (
		mu     sync.Mutex
		caches []*resetCounter
	)
	SweepCaches(n, 3, func() Cache {
		c := &resetCounter{}
		mu.Lock()
		caches = append(caches, c)
		mu.Unlock()
		return c
	}, func(i int, c Cache) {})
	total := int64(0)
	for _, c := range caches {
		total += c.resets.Load()
	}
	if total != n {
		t.Errorf("total resets = %d, want %d", total, n)
	}
	if len(caches) > 3 {
		t.Errorf("built %d caches, want ≤ 3", len(caches))
	}
}

// referenceNetChanges is the original map-per-call implementation, kept
// as the oracle for the Reconciler's in-place netting.
func referenceNetChanges(loaded, evicted []model.Item) ([]model.Item, []model.Item) {
	if len(loaded) == 0 || len(evicted) == 0 {
		return loaded, evicted
	}
	inBoth := make(map[model.Item]int, len(evicted))
	for _, e := range evicted {
		inBoth[e]++
	}
	var nl, ne []model.Item
	for _, l := range loaded {
		if inBoth[l] > 0 {
			inBoth[l]--
			continue
		}
		nl = append(nl, l)
	}
	for _, e := range evicted {
		if n := inBoth[e]; n > 0 {
			inBoth[e]--
			ne = append(ne, e)
		}
	}
	return nl, ne
}

func TestReconcilerMatchesReference(t *testing.T) {
	const universe = 64
	rng := rand.New(rand.NewSource(7))
	bounded := NewReconciler(universe)
	generic := NewReconciler(0)
	for trial := 0; trial < 5000; trial++ {
		var loaded, evicted []model.Item
		for i := rng.Intn(8); i > 0; i-- {
			loaded = append(loaded, model.Item(rng.Intn(universe)))
		}
		for i := rng.Intn(8); i > 0; i-- {
			evicted = append(evicted, model.Item(rng.Intn(universe)))
		}
		wantL, wantE := referenceNetChanges(loaded, evicted)
		check := func(name string, r *Reconciler) {
			gotL, gotE := r.NetChanges(append([]model.Item(nil), loaded...), append([]model.Item(nil), evicted...))
			if len(gotL) != len(wantL) || len(gotE) != len(wantE) {
				t.Fatalf("trial %d %s: lens (%d,%d) want (%d,%d) for loaded=%v evicted=%v",
					trial, name, len(gotL), len(gotE), len(wantL), len(wantE), loaded, evicted)
			}
			for i := range gotL {
				if gotL[i] != wantL[i] {
					t.Fatalf("trial %d %s: netLoaded %v want %v", trial, name, gotL, wantL)
				}
			}
			for i := range gotE {
				if gotE[i] != wantE[i] {
					t.Fatalf("trial %d %s: netEvicted %v want %v", trial, name, gotE, wantE)
				}
			}
		}
		check("bounded", bounded)
		check("generic", generic)
	}
}

func TestReconcilerGenerationWraparound(t *testing.T) {
	r := NewReconciler(8)
	// Seed stale stamps at an old generation, then force the uint32
	// generation counter to wrap; stale entries must not alias.
	r.NetChanges([]model.Item{1, 2}, []model.Item{2, 3})
	r.gen = ^uint32(0)
	gotL, gotE := r.NetChanges([]model.Item{1, 2}, []model.Item{2, 3})
	if len(gotL) != 1 || gotL[0] != 1 || len(gotE) != 1 || gotE[0] != 3 {
		t.Fatalf("post-wrap NetChanges = %v, %v", gotL, gotE)
	}
	if r.gen != 1 {
		t.Errorf("gen after wrap = %d, want 1", r.gen)
	}
}

func TestPackageNetChangesStillNets(t *testing.T) {
	l, e := NetChanges([]model.Item{1, 2, 3}, []model.Item{3, 4})
	if len(l) != 2 || l[0] != 1 || l[1] != 2 || len(e) != 1 || e[0] != 4 {
		t.Fatalf("NetChanges = %v, %v", l, e)
	}
}

// TestRecorderBoundedMatchesGeneric feeds an identical random access
// stream to the map-backed and bitset-backed Recorders and requires
// identical statistics.
func TestRecorderBoundedMatchesGeneric(t *testing.T) {
	const universe = 32
	rng := rand.New(rand.NewSource(11))
	gen := NewRecorder("p")
	bnd := NewRecorderBounded("p", universe)
	if bnd.pristineBits == nil {
		t.Fatal("bounded recorder fell back to map path")
	}
	present := make(map[model.Item]bool)
	for step := 0; step < 20000; step++ {
		it := model.Item(rng.Intn(universe))
		var a Access
		if present[it] {
			a = Access{Hit: true}
		} else {
			loaded := []model.Item{it}
			for s := model.Item(rng.Intn(universe)); rng.Intn(2) == 0; s = model.Item(rng.Intn(universe)) {
				if !present[s] && s != it {
					loaded = append(loaded, s)
					present[s] = true
				}
			}
			var evicted []model.Item
			for v := range present {
				if v != it && rng.Intn(8) == 0 {
					evicted = append(evicted, v)
				}
			}
			for _, v := range evicted {
				delete(present, v)
			}
			present[it] = true
			a = Access{Loaded: loaded, Evicted: evicted}
		}
		gen.Observe(it, a)
		bnd.Observe(it, a)
	}
	if gen.Stats() != bnd.Stats() {
		t.Fatalf("stats diverged:\n generic %+v\n bounded %+v", gen.Stats(), bnd.Stats())
	}
}

func TestRecorderBoundedFallback(t *testing.T) {
	if r := NewRecorderBounded("p", 0); r.pristineBits != nil {
		t.Error("universe 0 should fall back to the map recorder")
	}
	if r := NewRecorderBounded("p", MaxBoundedUniverse+1); r.pristineBits != nil {
		t.Error("oversized universe should fall back to the map recorder")
	}
}

func TestRecorderResetReuses(t *testing.T) {
	for _, r := range []*Recorder{NewRecorder("a"), NewRecorderBounded("a", 16)} {
		r.Observe(0, Access{Loaded: []model.Item{0, 1}})
		r.Observe(1, Access{Hit: true})
		r.Reset("b")
		if s := r.Stats(); s.Policy != "b" || s.Accesses != 0 {
			t.Fatalf("stats after Reset = %+v", s)
		}
		// Item 1's pristineness must not leak across Reset.
		r.Observe(1, Access{Hit: true})
		if s := r.Stats(); s.SpatialHits != 0 || s.TemporalHits != 1 {
			t.Fatalf("pristine state leaked across Reset: %+v", s)
		}
	}
}

// seededFake implements Reseeder: it misses exactly once per seed parity,
// making reuse-vs-rebuild differences observable.
type seededFake struct {
	seed int64
	pos  int
}

func (f *seededFake) Name() string { return "seeded-fake" }
func (f *seededFake) Access(it model.Item) Access {
	f.pos++
	if f.pos%int(2+f.seed%3) == 0 {
		return Access{Hit: true}
	}
	return Access{Loaded: []model.Item{it}}
}
func (f *seededFake) Contains(model.Item) bool { return false }
func (f *seededFake) Len() int                 { return 0 }
func (f *seededFake) Capacity() int            { return 1 }
func (f *seededFake) Reset()                   { f.pos = 0 }
func (f *seededFake) Reseed(seed int64)        { f.seed = seed }

func TestRunSeedsReseedsPooledCaches(t *testing.T) {
	tr := make(trace.Trace, 60)
	for i := range tr {
		tr[i] = model.Item(i)
	}
	seeds := []int64{0, 1, 2, 3, 4, 5, 6, 7}
	var builds atomic.Int64
	build := func(seed int64) Cache {
		builds.Add(1)
		return &seededFake{seed: seed}
	}
	got := RunSeeds(build, tr, seeds)
	// Oracle: a fresh instance per seed, run serially.
	for i, seed := range seeds {
		want := RunCold(&seededFake{seed: seed}, tr).MissRatio()
		if got[i] != want {
			t.Errorf("seed %d: ratio %v, want %v (pooled reuse changed behaviour)", seed, got[i], want)
		}
	}
	max := int64(runtime.GOMAXPROCS(0))
	if max > int64(len(seeds)) {
		max = int64(len(seeds))
	}
	if builds.Load() > max {
		t.Errorf("built %d caches for %d seeds, want ≤ %d (per-worker pooling)", builds.Load(), len(seeds), max)
	}
}

// TestSweepPooledRace exercises the chunked sweep with per-worker pooled
// caches, a shared results slice, and a shared geometry under the race
// detector (`make race` runs this package with -race): worker-local
// caches may be mutated freely, AppendItems on a shared geometry must be
// race-free, and distinct result slots never conflict.
func TestSweepPooledRace(t *testing.T) {
	const n = 500
	geo := model.NewFixed(8)
	results := make([]int, n)
	type worker struct {
		cache *fakeDeterministic
		buf   []model.Item
	}
	Sweep(n, 0, func() *worker {
		return &worker{cache: &fakeDeterministic{}}
	}, func(i int, w *worker) {
		w.cache.Reset()
		w.buf = model.AppendItemsOf(geo, w.buf[:0], model.Block(i))
		total := 0
		for _, it := range w.buf {
			a := w.cache.Access(it)
			total += len(a.Loaded)
		}
		results[i] = total
	})
	for i, r := range results {
		if r != geo.BlockSize() {
			t.Fatalf("result[%d] = %d, want %d", i, r, geo.BlockSize())
		}
	}
}
