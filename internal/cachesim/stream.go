package cachesim

import (
	"context"
	"fmt"
	"os"

	"gccache/internal/trace"
)

// This file is the streaming half of the trace runner: Run and friends
// require the whole trace.Trace resident in memory, RunStream replays
// straight off a trace.Source (typically a trace.Scanner over a file)
// in O(1) memory. Statistics are identical — the stream-vs-slice
// differential tests assert byte-identical Stats — and the per-access
// path keeps the zero-allocation budget of the dense in-memory replay.

// RunStream replays src through c (without resetting it first) and
// returns the statistics together with the source's terminal error.
// A nil error means the whole stream was replayed; on a source error
// the statistics cover the requests replayed before the failure.
func RunStream(c Cache, src trace.Source) (Stats, error) {
	return runStream(context.Background(), c, src, NewRecorder(c.Name()))
}

// RunColdStream resets c and then replays src.
func RunColdStream(c Cache, src trace.Source) (Stats, error) {
	c.Reset()
	return RunStream(c, src)
}

// RunStreamCtx is RunStream with cooperative cancellation: the replay
// polls ctx every cancelStride accesses and, when the context ends,
// returns the statistics accumulated so far together with ctx's error
// (see RunCtx for the err == nil contract).
func RunStreamCtx(ctx context.Context, c Cache, src trace.Source) (Stats, error) {
	return runStream(ctx, c, src, NewRecorder(c.Name()))
}

// RunColdStreamCtx resets c and then replays src under ctx.
func RunColdStreamCtx(ctx context.Context, c Cache, src trace.Source) (Stats, error) {
	c.Reset()
	return RunStreamCtx(ctx, c, src)
}

// RunStreamBounded is RunStream with a bounded-universe Recorder (see
// RunBounded for the universe contract).
func RunStreamBounded(c Cache, src trace.Source, universe int) (Stats, error) {
	return runStream(context.Background(), c, src, NewRecorderBounded(c.Name(), universe))
}

// RunColdStreamBounded resets c and then replays src with a bounded
// Recorder.
func RunColdStreamBounded(c Cache, src trace.Source, universe int) (Stats, error) {
	c.Reset()
	return RunStreamBounded(c, src, universe)
}

// RunStreamBoundedCtx is RunStreamBounded with cooperative cancellation.
func RunStreamBoundedCtx(ctx context.Context, c Cache, src trace.Source, universe int) (Stats, error) {
	return runStream(ctx, c, src, NewRecorderBounded(c.Name(), universe))
}

// RunColdStreamBoundedCtx resets c and then replays src with a bounded
// Recorder under ctx.
func RunColdStreamBoundedCtx(ctx context.Context, c Cache, src trace.Source, universe int) (Stats, error) {
	c.Reset()
	return RunStreamBoundedCtx(ctx, c, src, universe)
}

// runStream is the streaming replay core. Context polling piggybacks on
// the same stride as runCtx, so cancellation support costs one counter
// test per access; the loop itself must stay allocation-free (the
// ZeroAlloc regression tests pin it).
//
//gclint:hotpath
func runStream(ctx context.Context, c Cache, src trace.Source, rec *Recorder) (Stats, error) {
	i := 0
	for src.Next() {
		if i&(cancelStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return rec.Stats(), err
			}
		}
		it := src.Item()
		rec.Observe(it, c.Access(it))
		i++
	}
	return rec.Stats(), src.Err()
}

// RunFile opens path, streams the gctrace binary format through c, and
// closes the file — the one-call entry point for replaying traces
// larger than memory. Universe > 0 selects the bounded (dense-path)
// Recorder; pass 0 when item IDs are unknown.
func RunFile(ctx context.Context, c Cache, path string, universe int) (Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return Stats{Policy: c.Name()}, fmt.Errorf("cachesim: open trace: %w", err)
	}
	defer f.Close()
	sc, err := trace.NewScanner(f)
	if err != nil {
		return Stats{Policy: c.Name()}, err
	}
	if universe > 0 {
		return RunStreamBoundedCtx(ctx, c, sc, universe)
	}
	return RunStreamCtx(ctx, c, sc)
}

// StreamStats summarizes a trace.Source without driving a cache —
// the streaming counterpart of trace.Summarize for the request-count
// side (distinct-item statistics need memory proportional to the
// universe and stay on the in-memory path).
func StreamStats(src trace.Source) (requests int64, err error) {
	for src.Next() {
		requests++
	}
	return requests, src.Err()
}
