package cachesim

import "testing"

// TestLogHistCeilRank pins logHist to the same ceil-rank (nearest-rank)
// percentile convention as obs.Histogram, so the recorder's streaming
// MissGap/LoadBurst percentiles and an attached histogram probe agree
// on identical data.
func TestLogHistCeilRank(t *testing.T) {
	var h logHist
	h.record(1)
	h.record(2)
	h.record(4)
	// p50 of 3 samples is the 2nd smallest (rank ceil(1.5) = 2): value 2,
	// whose log₂ bucket reports its lower bound 2. The floor-rank bug
	// returned 1.
	if got := h.percentile(0.5); got != 2 {
		t.Errorf("p50 of {1,2,4} = %d, want 2", got)
	}
	if got := h.percentile(1); got != 4 {
		t.Errorf("p100 = %d, want 4", got)
	}
	if got := h.percentile(0); got != 1 {
		t.Errorf("p0 = %d, want 1 (first sample)", got)
	}
	var empty logHist
	if got := empty.percentile(0.5); got != 0 {
		t.Errorf("empty p50 = %d, want 0", got)
	}
}
