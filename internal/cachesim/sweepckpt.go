package cachesim

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"gccache/internal/checkpoint"
)

// SweepCheckpointConfig configures a checkpointed sweep.
type SweepCheckpointConfig struct {
	// Path is the snapshot file. When it exists and matches, completed
	// indices are loaded instead of recomputed; when empty, the sweep
	// runs without checkpointing.
	Path string
	// Every saves a snapshot after this many newly completed indices.
	// Zero means 64.
	Every int
	// Hash fingerprints the instance (trace, grid, policy config). A
	// snapshot with a different hash is rejected instead of silently
	// resuming the wrong run. Zero skips the check.
	Hash int64
}

const sweepSnapshotKind = "cachesim.sweep"

// SweepCheckpointed runs fn(i, w) for every index in [0, n), collecting
// each point's encoded result and periodically persisting completed
// work to cfg.Path via atomic snapshots. A resumed run loads the
// snapshot, skips the indices it covers, and — because results are
// assembled by index regardless of which run computed them — returns
// bytes identical to an uninterrupted run when fn is deterministic.
//
// On cancellation the partial state is saved before the ctx error is
// returned; a killed process resumes from the last periodic save.
func SweepCheckpointed[W any](ctx context.Context, n, workers int, cfg SweepCheckpointConfig,
	newWorker func() W, fn func(i int, w W) []byte) ([][]byte, error) {
	results := make([][]byte, n)
	if cfg.Every <= 0 {
		cfg.Every = 64
	}
	if cfg.Path != "" {
		if _, err := os.Stat(cfg.Path); err == nil {
			snap, err := checkpoint.Load(cfg.Path)
			if err != nil {
				return nil, err
			}
			if err := restoreSweepSnapshot(snap, n, cfg.Hash, results); err != nil {
				return nil, err
			}
		}
	}

	var prog ckptProgress
	save := func() error {
		if cfg.Path == "" {
			return nil
		}
		return checkpoint.Save(cfg.Path, sweepSnapshot(n, cfg.Hash, results))
	}
	err := SweepCtx(ctx, n, workers, newWorker, func(i int, w W) {
		if results[i] != nil {
			return // restored from the snapshot
		}
		out := fn(i, w)
		if out == nil {
			out = []byte{} // distinguish "ran, empty" from "not run"
		}
		prog.noteDone(results, i, out, cfg.Every, save)
	})
	if serr := prog.err(); serr != nil {
		return nil, serr
	}
	// Persist the final state: complete on success, partial on
	// cancellation so the next run picks up exactly here.
	if serr := save(); serr != nil && err == nil {
		err = serr
	}
	return results, err
}

// ckptProgress is SweepCheckpointed's shared save bookkeeping. Worker
// callbacks funnel every completion through noteDone, so the sweep
// callback itself performs no captured writes (sweepsafe-clean without
// waivers) and the locking discipline on the fields below is
// machine-checked by the guardedby analyzer.
type ckptProgress struct {
	mu sync.Mutex
	//gclint:guardedby mu
	sinceSave int // completed points since the last snapshot
	//gclint:guardedby mu
	saveErr error // first failed save; sticky, stops further saves
}

// noteDone records one completed grid point and snapshots every `every`
// completions. results is written under mu because save reads the whole
// slice: a concurrent slot write outside the lock would race with an
// in-progress snapshot.
func (p *ckptProgress) noteDone(results [][]byte, i int, out []byte, every int, save func() error) {
	p.mu.Lock()
	results[i] = out
	p.sinceSave++
	if p.sinceSave >= every && p.saveErr == nil {
		p.sinceSave = 0
		p.saveErr = save()
	}
	p.mu.Unlock()
}

// err returns the sticky save failure, if any.
func (p *ckptProgress) err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.saveErr
}

// sweepSnapshot encodes the completed indices in index order: for each
// non-nil result, uvarint(index), uvarint(len), bytes.
func sweepSnapshot(n int, hash int64, results [][]byte) *checkpoint.Snapshot {
	var body []byte
	done := int64(0)
	for i, r := range results {
		if r == nil {
			continue
		}
		done++
		body = binary.AppendUvarint(body, uint64(i))
		body = binary.AppendUvarint(body, uint64(len(r)))
		body = append(body, r...)
	}
	return &checkpoint.Snapshot{
		Kind:     sweepSnapshotKind,
		Meta:     map[string]int64{"n": int64(n), "done": done, "hash": hash},
		Sections: map[string][]byte{"results": body},
	}
}

func restoreSweepSnapshot(snap *checkpoint.Snapshot, n int, hash int64, results [][]byte) error {
	if snap.Kind != sweepSnapshotKind {
		return fmt.Errorf("cachesim: snapshot kind %q is not a sweep checkpoint", snap.Kind)
	}
	if got := snap.MetaInt("n", -1); got != int64(n) {
		return fmt.Errorf("cachesim: snapshot is for a %d-point sweep, want %d", got, n)
	}
	if hash != 0 {
		if got := snap.MetaInt("hash", 0); got != hash {
			return fmt.Errorf("cachesim: snapshot instance hash %#x does not match %#x", got, hash)
		}
	}
	body := snap.Get("results")
	for len(body) > 0 {
		idx, k := binary.Uvarint(body)
		if k <= 0 {
			return fmt.Errorf("cachesim: truncated snapshot index")
		}
		body = body[k:]
		if idx >= uint64(n) {
			return fmt.Errorf("cachesim: snapshot index %d out of range", idx)
		}
		sz, k := binary.Uvarint(body)
		if k <= 0 {
			return fmt.Errorf("cachesim: truncated snapshot result length")
		}
		body = body[k:]
		if sz > uint64(len(body)) {
			return fmt.Errorf("cachesim: snapshot result length %d exceeds body", sz)
		}
		if results[idx] != nil {
			return fmt.Errorf("cachesim: duplicate snapshot index %d", idx)
		}
		results[idx] = append([]byte{}, body[:sz]...)
		body = body[sz:]
	}
	return nil
}
