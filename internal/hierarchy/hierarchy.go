// Package hierarchy simulates a multi-level memory hierarchy in which
// block granularity changes between levels — the setting that motivates
// the paper (Figure 1: SRAM caches of 64 B lines, DRAM of 2–4 KB rows,
// flash/disk of 4 KB pages). Each level runs its own GC caching policy
// at its own granularity; a miss at level ℓ becomes an access at level
// ℓ+1, and the total traffic is the cost the paper's single-boundary
// model charges at each boundary.
package hierarchy

import (
	"context"
	"fmt"
	"strings"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/trace"
)

// Level is one cache level of the stack.
type Level struct {
	// Name labels the level in reports ("L1", "DRAM cache", …).
	Name string
	// Cache is the level's policy (its geometry — the granularity of the
	// level *below* — is baked into the policy at construction).
	Cache cachesim.Cache
	// MissCost is the cost charged per miss at this level (the latency
	// or energy of reaching the next level). The backing store is
	// implicit below the last level.
	MissCost int64
}

// Stack is an inclusive-traffic hierarchy: every request is served at
// the first level that holds the item; each miss recurses one level
// down. Levels are ordered fastest (closest to the processor) first.
type Stack struct {
	levels    []Level
	recorders []*cachesim.Recorder
}

// New builds a stack. It returns an error if no levels are given or any
// level is missing a cache.
func New(levels ...Level) (*Stack, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("hierarchy: no levels")
	}
	s := &Stack{levels: levels}
	for i, l := range levels {
		if l.Cache == nil {
			return nil, fmt.Errorf("hierarchy: level %d (%s) has no cache", i, l.Name)
		}
		if l.MissCost < 0 {
			return nil, fmt.Errorf("hierarchy: level %d (%s) has negative miss cost", i, l.Name)
		}
		s.recorders = append(s.recorders, cachesim.NewRecorder(l.Cache.Name()))
	}
	return s, nil
}

// Access serves one request, returning the depth at which it hit
// (0-based level index; len(levels) means it went to backing store).
func (s *Stack) Access(it model.Item) int {
	for i, l := range s.levels {
		a := l.Cache.Access(it)
		s.recorders[i].Observe(it, a)
		if a.Hit {
			return i
		}
	}
	return len(s.levels)
}

// Run replays a trace through the stack.
func (s *Stack) Run(tr trace.Trace) Result {
	for _, it := range tr {
		s.Access(it)
	}
	return s.Result()
}

// cancelStride matches cachesim's polling stride: a multi-level access
// costs a handful of map operations, so checking ctx every 4096 accesses
// bounds cancellation latency at microseconds without touching the
// per-access path.
const cancelStride = 4096

// RunCtx is Run with cooperative cancellation: the replay polls ctx
// every cancelStride accesses and, when the context ends, returns the
// per-level statistics accumulated so far together with ctx's error.
// A completed replay returns a nil error.
func (s *Stack) RunCtx(ctx context.Context, tr trace.Trace) (Result, error) {
	for i, it := range tr {
		if i&(cancelStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return s.Result(), err
			}
		}
		s.Access(it)
	}
	return s.Result(), nil
}

// Reset clears every level.
func (s *Stack) Reset() {
	for i, l := range s.levels {
		l.Cache.Reset()
		s.recorders[i] = cachesim.NewRecorder(l.Cache.Name())
	}
}

// LevelStats returns the statistics of level i.
func (s *Stack) LevelStats(i int) cachesim.Stats { return s.recorders[i].Stats() }

// Result summarizes a run of the whole stack.
type Result struct {
	// PerLevel holds each level's stats; accesses at level ℓ equal the
	// misses of level ℓ−1.
	PerLevel []cachesim.Stats
	// Names labels PerLevel.
	Names []string
	// MissCosts are the per-level costs used for TotalCost.
	MissCosts []int64
}

// Result snapshots the current statistics.
func (s *Stack) Result() Result {
	r := Result{}
	for i, l := range s.levels {
		r.PerLevel = append(r.PerLevel, s.recorders[i].Stats())
		r.Names = append(r.Names, l.Name)
		r.MissCosts = append(r.MissCosts, l.MissCost)
	}
	return r
}

// TotalCost returns Σ level misses × level cost: the hierarchy-wide
// traffic cost of the run.
func (r Result) TotalCost() int64 {
	total := int64(0)
	for i, st := range r.PerLevel {
		total += st.Misses * r.MissCosts[i]
	}
	return total
}

// AMAT returns the average access cost per request: each request costs
// 1 plus, for each level it misses, that level's MissCost.
func (r Result) AMAT() float64 {
	if len(r.PerLevel) == 0 || r.PerLevel[0].Accesses == 0 {
		return 0
	}
	return 1 + float64(r.TotalCost())/float64(r.PerLevel[0].Accesses)
}

// String renders a compact per-level report.
func (r Result) String() string {
	var b strings.Builder
	for i, st := range r.PerLevel {
		fmt.Fprintf(&b, "%-12s accesses=%-9d hits=%-9d misses=%-9d missRatio=%.4f spatialHits=%d\n",
			r.Names[i], st.Accesses, st.Hits, st.Misses, st.MissRatio(), st.SpatialHits)
	}
	fmt.Fprintf(&b, "total traffic cost=%d  AMAT=%.3f", r.TotalCost(), r.AMAT())
	return b.String()
}
