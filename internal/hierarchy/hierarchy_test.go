package hierarchy

import (
	"strings"
	"testing"

	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/policy"
	"gccache/internal/workload"
)

func twoLevel(t *testing.T) *Stack {
	t.Helper()
	lineGeo := model.NewFixed(8) // L1 loads 8-item lines from L2
	rowGeo := model.NewFixed(64) // L2 loads 64-item rows from memory
	s, err := New(
		Level{Name: "L1", Cache: policy.NewItemLRU(64), MissCost: 10},
		Level{Name: "L2", Cache: core.NewIBLPEvenSplit(1024, rowGeo), MissCost: 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	_ = lineGeo
	return s
}

func TestAccessDescends(t *testing.T) {
	s := twoLevel(t)
	// Cold access goes all the way to memory.
	if depth := s.Access(0); depth != 2 {
		t.Errorf("cold access depth = %d, want 2", depth)
	}
	// Immediate re-access hits L1.
	if depth := s.Access(0); depth != 0 {
		t.Errorf("warm access depth = %d, want 0", depth)
	}
	// A row sibling misses L1 but hits L2 (IBLP loaded the row).
	if depth := s.Access(5); depth != 1 {
		t.Errorf("sibling access depth = %d, want 1", depth)
	}
}

func TestTrafficAccounting(t *testing.T) {
	s := twoLevel(t)
	res := s.Run(workload.Sequential(0, 640)) // 10 rows, one pass
	l1 := res.PerLevel[0]
	l2 := res.PerLevel[1]
	if l1.Accesses != 640 {
		t.Fatalf("L1 accesses = %d", l1.Accesses)
	}
	// Every L1 miss becomes exactly one L2 access.
	if l2.Accesses != l1.Misses {
		t.Errorf("L2 accesses %d != L1 misses %d", l2.Accesses, l1.Misses)
	}
	// Cold sequential sweep: L1 (pure item cache) misses everything; L2
	// (IBLP over 64-item rows) misses ≈ once per row.
	if l1.Misses != 640 {
		t.Errorf("L1 misses = %d, want 640", l1.Misses)
	}
	if l2.Misses != 10 {
		t.Errorf("L2 misses = %d, want 10 (one per row)", l2.Misses)
	}
	wantCost := 640*10 + 10*100
	if got := res.TotalCost(); got != int64(wantCost) {
		t.Errorf("TotalCost = %d, want %d", got, wantCost)
	}
	wantAMAT := 1 + float64(wantCost)/640
	if got := res.AMAT(); got != wantAMAT {
		t.Errorf("AMAT = %v, want %v", got, wantAMAT)
	}
	if !strings.Contains(res.String(), "L2") {
		t.Error("String() missing level name")
	}
}

func TestGCAwareL2BeatsItemL2(t *testing.T) {
	rowGeo := model.NewFixed(64)
	build := func(l2 Level) Result {
		s, err := New(
			Level{Name: "L1", Cache: policy.NewItemLRU(64), MissCost: 10},
			l2,
		)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(workload.MatrixTraversal(64, 256, true, 2))
	}
	gcAware := build(Level{Name: "L2", Cache: core.NewIBLPEvenSplit(2048, rowGeo), MissCost: 100})
	itemOnly := build(Level{Name: "L2", Cache: policy.NewItemLRU(2048), MissCost: 100})
	if gcAware.TotalCost() >= itemOnly.TotalCost() {
		t.Errorf("GC-aware L2 cost %d should beat item-only L2 cost %d",
			gcAware.TotalCost(), itemOnly.TotalCost())
	}
}

func TestThreeLevelStack(t *testing.T) {
	s, err := New(
		Level{Name: "L1", Cache: policy.NewItemLRU(32), MissCost: 1},
		Level{Name: "L2", Cache: policy.NewBlockLoadItemEvict(512, model.NewFixed(8)), MissCost: 10},
		Level{Name: "L3", Cache: core.NewIBLPEvenSplit(4096, model.NewFixed(64)), MissCost: 200},
	)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(workload.CyclicScan(2048, 20000))
	// Monotone traffic: accesses can only shrink going down.
	for i := 1; i < len(res.PerLevel); i++ {
		if res.PerLevel[i].Accesses != res.PerLevel[i-1].Misses {
			t.Errorf("level %d accesses %d != level %d misses %d",
				i, res.PerLevel[i].Accesses, i-1, res.PerLevel[i-1].Misses)
		}
	}
	if res.TotalCost() <= 0 {
		t.Error("no traffic?")
	}
}

func TestResetAndLevelStats(t *testing.T) {
	s := twoLevel(t)
	s.Run(workload.Sequential(0, 100))
	if s.LevelStats(0).Accesses != 100 {
		t.Error("LevelStats before reset")
	}
	s.Reset()
	if s.LevelStats(0).Accesses != 0 {
		t.Error("Reset did not clear stats")
	}
	if depth := s.Access(0); depth != 2 {
		t.Error("Reset did not clear caches")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty stack accepted")
	}
	if _, err := New(Level{Name: "x"}); err == nil {
		t.Error("nil cache accepted")
	}
	if _, err := New(Level{Name: "x", Cache: policy.NewItemLRU(4), MissCost: -1}); err == nil {
		t.Error("negative cost accepted")
	}
	var empty Result
	if empty.AMAT() != 0 {
		t.Error("empty AMAT")
	}
}
