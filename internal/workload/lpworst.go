package workload

import (
	"fmt"

	"gccache/internal/model"
	"gccache/internal/trace"
)

// LPWorstConfig parameterizes LPWorstCase, the executable realization of
// the paper's Figure 5 worst-case pattern for IBLP(i, b).
type LPWorstConfig struct {
	// ItemLayer and BlockLayer are the IBLP layer sizes the trace is
	// tailored against.
	ItemLayer  int
	BlockLayer int
	// BlockSize is B.
	BlockSize int
	// SpatialShare in [0,1] is the fraction of accesses drawn from the
	// spatial component (the LP's s·t mass); the rest exercise the
	// temporal component (the LP's r mass).
	SpatialShare float64
	// Length is the number of requests.
	Length int
}

// LPWorstCase generates the adversarial access pattern of Figure 5:
//
//   - a *temporal* component cycling over ItemLayer+1 single-item blocks,
//     so the item layer (LRU of size i) misses every visit while a
//     prescient cache can retain and hit them;
//   - a *spatial* component cycling over BlockLayer/B + 1 blocks, taking
//     the next item (round-robin) of each block per visit, so the block
//     layer (LRU over b/B frames) misses every visit while a prescient
//     cache that loads t items per unit-cost miss hits the next t−1
//     visits — the staggered triangle of the §5.2 cache-usage argument.
//
// The two components are deterministically interleaved according to
// SpatialShare. Addresses are laid out so the components never share
// blocks.
func LPWorstCase(cfg LPWorstConfig) (trace.Trace, error) {
	if cfg.ItemLayer < 1 || cfg.BlockLayer < 0 || cfg.BlockSize < 1 || cfg.Length < 0 {
		return nil, fmt.Errorf("workload: bad LPWorstCase config %+v", cfg)
	}
	if cfg.SpatialShare < 0 || cfg.SpatialShare > 1 {
		return nil, fmt.Errorf("workload: SpatialShare %v outside [0,1]", cfg.SpatialShare)
	}
	B := uint64(cfg.BlockSize)
	// Temporal universe: i+1 items, one per block, in low address space.
	tN := uint64(cfg.ItemLayer + 1)
	// Spatial universe: b/B + 1 full blocks, placed above the temporal
	// region.
	sN := uint64(cfg.BlockLayer/cfg.BlockSize + 1)
	sBase := (tN + 1) * B

	tr := make(trace.Trace, 0, cfg.Length)
	var tPos, sVisit uint64
	sOffsets := make([]uint64, sN) // per-block round-robin offset
	// Error-diffusion interleave: emit spatial accesses at SpatialShare
	// density without randomness.
	acc := 0.0
	for len(tr) < cfg.Length {
		acc += cfg.SpatialShare
		if acc >= 1 {
			acc--
			blk := sVisit % sN
			off := sOffsets[blk]
			sOffsets[blk] = (off + 1) % B
			tr = append(tr, model.Item(sBase+blk*B+off))
			sVisit++
		} else {
			tr = append(tr, model.Item((tPos%tN)*B))
			tPos++
		}
	}
	return tr, nil
}
