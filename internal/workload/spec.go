package workload

import (
	"fmt"
	"strconv"
	"strings"

	"gccache/internal/trace"
)

// FromSpec builds a trace from a compact textual description, used by the
// command-line tools:
//
//	sequential:len=1000
//	cyclic:n=256,len=10000
//	stride:n=64,s=8,len=10000
//	zipf:n=4096,s=1.2,len=100000
//	blockruns:blocks=512,B=64,run=16,zipf=1.1,len=100000
//	hotcold:hot=16,B=64,frac=0.8,cold=4096,len=100000
//	matrix:r=64,c=64,colmajor=1,passes=4
//
// Unknown keys are rejected; omitted keys take the defaults shown by
// SpecHelp.
func FromSpec(spec string, seed int64) (trace.Trace, error) {
	name, params, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	p := specParams{m: params}
	// MaxSpecLength caps generated traces so a malformed or hostile spec
	// cannot exhaust memory.
	const MaxSpecLength = 1 << 26
	if raw, ok := params["len"]; ok {
		v, err := strconv.Atoi(raw)
		if err != nil {
			return nil, fmt.Errorf("workload: len=%q is not an integer", raw)
		}
		if v < 0 || v > MaxSpecLength {
			return nil, fmt.Errorf("workload: len=%d outside [0, %d]", v, MaxSpecLength)
		}
	}
	var tr trace.Trace
	switch name {
	case "sequential":
		tr = Sequential(0, p.geti("len", 1000))
	case "cyclic":
		tr = CyclicScan(p.geti("n", 256), p.geti("len", 10000))
	case "stride":
		tr = Stride(p.geti("n", 64), p.geti("s", 8), p.geti("len", 10000))
	case "zipf":
		tr = Zipf(p.geti("n", 4096), p.getf("s", 1.2), p.geti("len", 100000), seed)
	case "blockruns":
		cfg := BlockRunsConfig{
			NumBlocks:     p.geti("blocks", 512),
			BlockSize:     p.geti("B", 64),
			MeanRunLength: p.getf("run", 8),
			ZipfS:         p.getf("zipf", 0),
			Length:        p.geti("len", 100000),
			Seed:          seed,
		}
		tr, err = BlockRuns(cfg)
	case "hotcold":
		hc := HotCold{
			HotItems:     p.geti("hot", 16),
			BlockSize:    p.geti("B", 64),
			HotFraction:  p.getf("frac", 0.8),
			ColdUniverse: p.geti("cold", 4096),
			Length:       p.geti("len", 100000),
			Seed:         seed,
		}
		tr, err = hc.Generate()
	case "matrix":
		mr, mc, passes := p.geti("r", 64), p.geti("c", 64), p.geti("passes", 2)
		if mr < 0 || mc < 0 || passes < 0 ||
			(mr > 0 && mc > 0 && passes > 0 && int64(mr)*int64(mc)*int64(passes) > MaxSpecLength) {
			return nil, fmt.Errorf("workload: matrix spec %q too large", spec)
		}
		tr = MatrixTraversal(mr, mc, p.geti("colmajor", 0) == 0, passes)
	default:
		return nil, fmt.Errorf("workload: unknown spec %q (see SpecHelp)", name)
	}
	if err != nil {
		return nil, err
	}
	if p.err != nil {
		return nil, p.err
	}
	if len(p.unused()) > 0 {
		return nil, fmt.Errorf("workload: unknown keys %v in spec %q", p.unused(), spec)
	}
	if len(tr) > MaxSpecLength {
		return nil, fmt.Errorf("workload: spec %q generated %d requests (cap %d)",
			spec, len(tr), MaxSpecLength)
	}
	return tr, nil
}

// SpecHelp describes the FromSpec grammar for --help output.
const SpecHelp = `workload specs (key=value, comma separated):
  sequential:len=N
  cyclic:n=N,len=N
  stride:n=N,s=S,len=N
  zipf:n=N,s=SKEW,len=N
  blockruns:blocks=N,B=N,run=MEAN,zipf=SKEW,len=N
  hotcold:hot=N,B=N,frac=F,cold=N,len=N
  matrix:r=N,c=N,colmajor=0|1,passes=N`

func parseSpec(spec string) (name string, params map[string]string, err error) {
	name, rest, _ := strings.Cut(spec, ":")
	name = strings.TrimSpace(strings.ToLower(name))
	if name == "" {
		return "", nil, fmt.Errorf("workload: empty spec")
	}
	params = make(map[string]string)
	if strings.TrimSpace(rest) == "" {
		return name, params, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		k = strings.TrimSpace(k)
		if !ok || k == "" {
			return "", nil, fmt.Errorf("workload: bad parameter %q in %q", kv, spec)
		}
		params[k] = strings.TrimSpace(v)
	}
	return name, params, nil
}

// specParams reads typed values out of the parsed key/value map, tracking
// the first error and which keys were consumed.
type specParams struct {
	m    map[string]string
	used map[string]bool
	err  error
}

func (p *specParams) geti(key string, def int) int {
	raw, ok := p.take(key)
	if !ok {
		return def
	}
	v, err := strconv.Atoi(raw)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("workload: %s=%q is not an integer", key, raw)
	}
	return v
}

func (p *specParams) getf(key string, def float64) float64 {
	raw, ok := p.take(key)
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("workload: %s=%q is not a number", key, raw)
	}
	return v
}

func (p *specParams) take(key string) (string, bool) {
	if p.used == nil {
		p.used = make(map[string]bool)
	}
	raw, ok := p.m[key]
	if ok {
		p.used[key] = true
	}
	return raw, ok
}

func (p *specParams) unused() []string {
	var out []string
	for k := range p.m {
		if !p.used[k] {
			out = append(out, k)
		}
	}
	return out
}
