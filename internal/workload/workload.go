// Package workload generates synthetic request traces with controllable
// temporal and spatial locality. The generators cover the regimes the
// paper's analysis distinguishes: pure temporal locality (hot items, one
// per block), pure spatial locality (sequential block sweeps), tunable
// mixtures (block runs with a chosen mean run length), and the classic
// skewed-popularity and scan patterns real cache studies use.
//
// All generators are deterministic given their seed.
package workload

import (
	"fmt"
	"math/rand"

	"gccache/internal/model"
	"gccache/internal/trace"
)

// Sequential returns a trace scanning length consecutive items starting
// at start — maximal spatial locality, no temporal reuse.
func Sequential(start model.Item, length int) trace.Trace {
	tr := make(trace.Trace, length)
	for i := range tr {
		tr[i] = start + model.Item(i)
	}
	return tr
}

// CyclicScan repeatedly sweeps a universe of n consecutive items until
// the trace reaches length — the classic LRU-worst-case loop with full
// spatial locality inside each sweep.
func CyclicScan(n, length int) trace.Trace {
	if n < 1 {
		n = 1
	}
	tr := make(trace.Trace, length)
	for i := range tr {
		tr[i] = model.Item(i % n)
	}
	return tr
}

// Stride accesses items 0, s, 2s, … (mod n·s): one item per block when
// s ≥ B, eliminating spatial locality while keeping a cyclic reuse
// pattern.
func Stride(n, s, length int) trace.Trace {
	if n < 1 {
		n = 1
	}
	if s < 1 {
		s = 1
	}
	tr := make(trace.Trace, length)
	for i := range tr {
		tr[i] = model.Item((i % n) * s)
	}
	return tr
}

// Zipf draws length requests from a Zipf(s) distribution over a universe
// of n items — heavy temporal locality on the popular head. Items are
// identified directly by rank, so with the Fixed(B) geometry popular
// items cluster into popular blocks, giving mild spatial locality; pass
// the result through Scatter to remove it.
func Zipf(n int, s float64, length int, seed int64) trace.Trace {
	if n < 1 {
		n = 1
	}
	if s <= 1 {
		s = 1.0000001 // rand.Zipf requires s > 1
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	tr := make(trace.Trace, length)
	for i := range tr {
		tr[i] = model.Item(z.Uint64())
	}
	return tr
}

// Scatter remaps each distinct item of tr to a pseudo-random sparse
// address so that no two trace items share a block (for any block size up
// to minGap). It preserves the temporal reuse pattern exactly while
// destroying spatial locality.
func Scatter(tr trace.Trace, minGap int, seed int64) trace.Trace {
	if minGap < 1 {
		minGap = 1
	}
	rng := rand.New(rand.NewSource(seed))
	remap := make(map[model.Item]model.Item, 64)
	next := uint64(0)
	out := make(trace.Trace, len(tr))
	for i, it := range tr {
		m, ok := remap[it]
		if !ok {
			// Leave a random extra gap so items land in distinct,
			// unaligned blocks.
			next += uint64(minGap) + uint64(rng.Intn(minGap))
			m = model.Item(next)
			remap[it] = m
		}
		out[i] = m
	}
	return out
}

// BlockRunsConfig parameterizes BlockRuns.
type BlockRunsConfig struct {
	// NumBlocks is the number of distinct blocks in the universe.
	NumBlocks int
	// BlockSize is B, the geometry's block size.
	BlockSize int
	// MeanRunLength is the average number of distinct items touched per
	// excursion into a block, in [1, BlockSize]: 1 yields no spatial
	// locality, BlockSize yields full-block sweeps.
	MeanRunLength float64
	// ZipfS skews block popularity when > 1; 0 or 1 means uniform.
	ZipfS float64
	// Length is the number of requests to generate.
	Length int
	// Seed drives all randomness.
	Seed int64
}

// BlockRuns generates the package's main tunable-locality workload: it
// repeatedly picks a block (uniformly or Zipf-skewed), then touches a
// geometrically distributed number of consecutive items inside it. The
// f/g locality ratio of the result tracks MeanRunLength.
func BlockRuns(cfg BlockRunsConfig) (trace.Trace, error) {
	if cfg.NumBlocks < 1 || cfg.BlockSize < 1 || cfg.Length < 0 {
		return nil, fmt.Errorf("workload: bad BlockRuns config %+v", cfg)
	}
	if cfg.MeanRunLength < 1 {
		cfg.MeanRunLength = 1
	}
	if cfg.MeanRunLength > float64(cfg.BlockSize) {
		cfg.MeanRunLength = float64(cfg.BlockSize)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.NumBlocks-1))
	}
	// Geometric run length with mean m: success probability 1/m,
	// truncated at BlockSize.
	p := 1 / cfg.MeanRunLength
	tr := make(trace.Trace, 0, cfg.Length)
	for len(tr) < cfg.Length {
		var blk uint64
		if zipf != nil {
			blk = zipf.Uint64()
		} else {
			blk = uint64(rng.Intn(cfg.NumBlocks))
		}
		runLen := 1
		for runLen < cfg.BlockSize && rng.Float64() > p {
			runLen++
		}
		start := 0
		if runLen < cfg.BlockSize {
			start = rng.Intn(cfg.BlockSize - runLen + 1)
		}
		base := blk * uint64(cfg.BlockSize)
		for j := 0; j < runLen && len(tr) < cfg.Length; j++ {
			tr = append(tr, model.Item(base+uint64(start+j)))
		}
	}
	return tr, nil
}

// HotCold interleaves a small hot set (one item per block, pure temporal
// locality) with cold sequential scans (pure spatial locality): the
// mixture that separates IBLP from both single-granularity baselines.
type HotCold struct {
	// HotItems is the number of hot items; hot item j lives in block j
	// (spread out with the given BlockSize so each occupies its own
	// block).
	HotItems int
	// BlockSize spaces the hot items apart.
	BlockSize int
	// HotFraction is the probability a request goes to the hot set.
	HotFraction float64
	// ColdUniverse is the number of cold items scanned sequentially,
	// starting above the hot region.
	ColdUniverse int
	// Length and Seed as usual.
	Length int
	Seed   int64
}

// Generate produces the trace.
func (h HotCold) Generate() (trace.Trace, error) {
	if h.HotItems < 1 || h.BlockSize < 1 || h.ColdUniverse < 1 || h.Length < 0 {
		return nil, fmt.Errorf("workload: bad HotCold config %+v", h)
	}
	if h.HotFraction < 0 || h.HotFraction > 1 {
		return nil, fmt.Errorf("workload: HotFraction %v outside [0,1]", h.HotFraction)
	}
	rng := rand.New(rand.NewSource(h.Seed))
	coldBase := uint64(h.HotItems+1) * uint64(h.BlockSize)
	coldPos := 0
	tr := make(trace.Trace, h.Length)
	for i := range tr {
		if rng.Float64() < h.HotFraction {
			tr[i] = model.Item(uint64(rng.Intn(h.HotItems)) * uint64(h.BlockSize))
		} else {
			tr[i] = model.Item(coldBase + uint64(coldPos))
			coldPos = (coldPos + 1) % h.ColdUniverse
		}
	}
	return tr, nil
}

// MatrixTraversal emulates the memory trace of walking an r×c matrix
// stored row-major, one element per item. rowMajor=true walks rows
// (spatially local under Fixed(B) geometry); rowMajor=false walks columns
// (one item per block when c ≥ B).
func MatrixTraversal(r, c int, rowMajor bool, passes int) trace.Trace {
	tr := make(trace.Trace, 0, r*c*passes)
	for p := 0; p < passes; p++ {
		if rowMajor {
			for i := 0; i < r; i++ {
				for j := 0; j < c; j++ {
					tr = append(tr, model.Item(i*c+j))
				}
			}
		} else {
			for j := 0; j < c; j++ {
				for i := 0; i < r; i++ {
					tr = append(tr, model.Item(i*c+j))
				}
			}
		}
	}
	return tr
}

// Phased concatenates sub-traces, modeling programs whose locality
// characteristics change over time.
func Phased(phases ...trace.Trace) trace.Trace { return trace.Concat(phases...) }

// Drifting generates a workload whose locality regime changes over time:
// alternating epochs of temporal traffic (single-block hot items) and
// spatial traffic (full-block sweeps). It exercises policies' ability to
// re-adapt — fixed partitions are tuned for at most one epoch type.
type Drifting struct {
	// BlockSize is B.
	BlockSize int
	// HotItems is the temporal epochs' working-set size (items, one per
	// block).
	HotItems int
	// SweepBlocks is the spatial epochs' cycle length in blocks.
	SweepBlocks int
	// EpochLength is the number of requests per epoch.
	EpochLength int
	// Epochs is the number of epochs (alternating, temporal first).
	Epochs int
}

// Generate produces the trace.
func (d Drifting) Generate() (trace.Trace, error) {
	if d.BlockSize < 1 || d.HotItems < 1 || d.SweepBlocks < 1 ||
		d.EpochLength < 0 || d.Epochs < 0 {
		return nil, fmt.Errorf("workload: bad Drifting config %+v", d)
	}
	tr := make(trace.Trace, 0, d.EpochLength*d.Epochs)
	sweepBase := uint64(d.HotItems+1) * uint64(d.BlockSize)
	for e := 0; e < d.Epochs; e++ {
		if e%2 == 0 {
			for n := 0; n < d.EpochLength; n++ {
				tr = append(tr, model.Item(uint64(n%d.HotItems)*uint64(d.BlockSize)))
			}
		} else {
			span := d.SweepBlocks * d.BlockSize
			for n := 0; n < d.EpochLength; n++ {
				tr = append(tr, model.Item(sweepBase+uint64(n%span)))
			}
		}
	}
	return tr, nil
}

// StorageServer models a block-storage request mix: a few sequential
// streams (backup/scan traffic, spatially perfect), uniform random small
// reads (no locality), and Zipf-hot metadata blocks accessed at item
// granularity — the trace shape of the storage systems the paper's DRAM
// cache citations serve.
type StorageServer struct {
	// BlockSize is B.
	BlockSize int
	// Streams is the number of concurrent sequential streams.
	Streams int
	// RandomUniverse is the item universe of the random-read component.
	RandomUniverse int
	// MetaBlocks is the number of hot metadata blocks (Zipf-weighted).
	MetaBlocks int
	// Mix gives the per-request probabilities of (stream, random, meta);
	// they must be nonnegative and sum to ≤ 1, with the remainder going
	// to the stream component.
	RandomFrac, MetaFrac float64
	Length               int
	Seed                 int64
}

// Generate produces the trace. Address regions of the three components
// are disjoint.
func (s StorageServer) Generate() (trace.Trace, error) {
	if s.BlockSize < 1 || s.Streams < 1 || s.RandomUniverse < 1 ||
		s.MetaBlocks < 1 || s.Length < 0 {
		return nil, fmt.Errorf("workload: bad StorageServer config %+v", s)
	}
	if s.RandomFrac < 0 || s.MetaFrac < 0 || s.RandomFrac+s.MetaFrac > 1 {
		return nil, fmt.Errorf("workload: bad StorageServer mix %v/%v", s.RandomFrac, s.MetaFrac)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	metaZipf := rand.NewZipf(rng, 1.3, 1, uint64(s.MetaBlocks-1))

	streamBase := uint64(0)
	randomBase := uint64(1) << 40
	metaBase := uint64(1) << 41
	streamPos := make([]uint64, s.Streams)
	for i := range streamPos {
		// Space streams far apart so they never collide.
		streamPos[i] = streamBase + uint64(i)<<30
	}
	tr := make(trace.Trace, s.Length)
	for i := range tr {
		r := rng.Float64()
		switch {
		case r < s.RandomFrac:
			tr[i] = model.Item(randomBase + uint64(rng.Intn(s.RandomUniverse)))
		case r < s.RandomFrac+s.MetaFrac:
			blk := metaZipf.Uint64()
			off := uint64(rng.Intn(2)) // metadata touches 1–2 items per block
			tr[i] = model.Item(metaBase + blk*uint64(s.BlockSize) + off)
		default:
			st := rng.Intn(s.Streams)
			tr[i] = model.Item(streamPos[st])
			streamPos[st]++
		}
	}
	return tr, nil
}
