package workload

import "testing"

// FuzzFromSpec asserts the spec parser never panics and that generated
// traces respect their length parameter when parsing succeeds.
func FuzzFromSpec(f *testing.F) {
	f.Add("cyclic:n=10,len=100")
	f.Add("blockruns:blocks=4,B=4,run=2,len=50")
	f.Add("zipf:::")
	f.Add("matrix:r=0,c=0")
	f.Add("hotcold:frac=1e308")
	f.Fuzz(func(t *testing.T, spec string) {
		tr, err := FromSpec(spec, 1)
		if err != nil {
			return
		}
		const cap = 1 << 24
		if len(tr) > cap {
			t.Fatalf("spec %q generated %d requests", spec, len(tr))
		}
	})
}
