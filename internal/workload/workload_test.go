package workload

import (
	"math"
	"testing"

	"gccache/internal/locality"
	"gccache/internal/model"
	"gccache/internal/trace"
)

func TestSequential(t *testing.T) {
	tr := Sequential(10, 5)
	want := trace.Trace{10, 11, 12, 13, 14}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("Sequential = %v", tr)
		}
	}
}

func TestCyclicScanWraps(t *testing.T) {
	tr := CyclicScan(3, 7)
	want := trace.Trace{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("CyclicScan = %v", tr)
		}
	}
	if got := CyclicScan(0, 2); len(got) != 2 {
		t.Error("n=0 not clamped")
	}
}

func TestStrideOneItemPerBlock(t *testing.T) {
	g := model.NewFixed(8)
	tr := Stride(16, 8, 64)
	s := trace.Summarize(tr, g)
	if s.MeanItemsPerBlock != 1 {
		t.Errorf("stride ≥ B should have 1 item/block, got %v", s.MeanItemsPerBlock)
	}
}

func TestZipfSkew(t *testing.T) {
	tr := Zipf(1000, 1.5, 50000, 1)
	if len(tr) != 50000 {
		t.Fatalf("len = %d", len(tr))
	}
	counts := make(map[model.Item]int)
	for _, it := range tr {
		counts[it]++
	}
	// Rank 0 must dominate: at least 10× the median frequency.
	if counts[0] < len(tr)/10 {
		t.Errorf("zipf head count = %d, want heavy skew", counts[0])
	}
	// Deterministic per seed.
	tr2 := Zipf(1000, 1.5, 50000, 1)
	for i := range tr {
		if tr[i] != tr2[i] {
			t.Fatal("zipf not deterministic per seed")
		}
	}
}

func TestScatterPreservesReusePattern(t *testing.T) {
	tr := trace.Trace{1, 2, 1, 3, 2, 1}
	sc := Scatter(tr, 64, 5)
	if len(sc) != len(tr) {
		t.Fatal("length changed")
	}
	// Same reuse structure: positions equal iff original positions equal.
	for i := range tr {
		for j := range tr {
			if (tr[i] == tr[j]) != (sc[i] == sc[j]) {
				t.Fatalf("reuse pattern broken at %d,%d", i, j)
			}
		}
	}
	// No two distinct items share a block of size ≤ 64.
	g := model.NewFixed(64)
	blocks := make(map[model.Block]model.Item)
	for _, it := range sc {
		if prev, ok := blocks[g.BlockOf(it)]; ok && prev != it {
			t.Fatalf("items %d and %d share a block", prev, it)
		}
		blocks[g.BlockOf(it)] = it
	}
}

func TestBlockRunsLocalityTracksMeanRunLength(t *testing.T) {
	B := 16
	g := model.NewFixed(B)
	for _, mean := range []float64{1, 4, 16} {
		tr, err := BlockRuns(BlockRunsConfig{
			NumBlocks: 256, BlockSize: B, MeanRunLength: mean,
			Length: 60000, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := trace.Summarize(tr, g)
		if math.Abs(s.BlockRunLengthMean-mean) > mean*0.35+0.3 {
			t.Errorf("mean=%v: measured run length %v", mean, s.BlockRunLengthMean)
		}
	}
}

func TestBlockRunsSpatialLocalityRatio(t *testing.T) {
	B := 16
	g := model.NewFixed(B)
	trLow, err := BlockRuns(BlockRunsConfig{NumBlocks: 128, BlockSize: B,
		MeanRunLength: 1, Length: 30000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	trHigh, err := BlockRuns(BlockRunsConfig{NumBlocks: 128, BlockSize: B,
		MeanRunLength: 16, Length: 30000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	lengths := []int{64, 256, 1024}
	rLow := locality.SpatialLocalityRatio(
		locality.MeasureItems(trLow, lengths), locality.MeasureBlocks(trLow, g, lengths))
	rHigh := locality.SpatialLocalityRatio(
		locality.MeasureItems(trHigh, lengths), locality.MeasureBlocks(trHigh, g, lengths))
	if rHigh < 2*rLow {
		t.Errorf("f/g ratio: high-run %v should far exceed low-run %v", rHigh, rLow)
	}
}

func TestBlockRunsRejectsBadConfig(t *testing.T) {
	if _, err := BlockRuns(BlockRunsConfig{NumBlocks: 0, BlockSize: 4, Length: 10}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestHotColdMixesLocalities(t *testing.T) {
	hc := HotCold{HotItems: 4, BlockSize: 8, HotFraction: 0.5,
		ColdUniverse: 1000, Length: 20000, Seed: 2}
	tr, err := hc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for _, it := range tr {
		if uint64(it) < 4*8 {
			hot++
		}
	}
	frac := float64(hot) / float64(len(tr))
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("hot fraction = %v, want ≈0.5", frac)
	}
}

func TestHotColdValidation(t *testing.T) {
	if _, err := (HotCold{HotItems: 0, BlockSize: 1, ColdUniverse: 1, Length: 1}).Generate(); err == nil {
		t.Error("HotItems=0 accepted")
	}
	if _, err := (HotCold{HotItems: 1, BlockSize: 1, ColdUniverse: 1, Length: 1, HotFraction: 1.5}).Generate(); err == nil {
		t.Error("HotFraction>1 accepted")
	}
}

func TestMatrixTraversalLocality(t *testing.T) {
	g := model.NewFixed(8)
	row := MatrixTraversal(16, 64, true, 1)
	col := MatrixTraversal(16, 64, false, 1)
	if len(row) != 16*64 || len(col) != 16*64 {
		t.Fatal("wrong lengths")
	}
	sRow := trace.Summarize(row, g)
	sCol := trace.Summarize(col, g)
	if sRow.BlockRunLengthMean < 4 {
		t.Errorf("row-major run length %v, want ≈ 8", sRow.BlockRunLengthMean)
	}
	if sCol.BlockRunLengthMean > 1.01 {
		t.Errorf("col-major run length %v, want 1", sCol.BlockRunLengthMean)
	}
}

func TestFromSpecAllForms(t *testing.T) {
	specs := []string{
		"sequential:len=100",
		"cyclic:n=10,len=100",
		"stride:n=8,s=4,len=100",
		"zipf:n=100,s=1.3,len=100",
		"blockruns:blocks=16,B=8,run=4,len=100",
		"blockruns:blocks=16,B=8,run=4,zipf=1.2,len=100",
		"hotcold:hot=4,B=8,frac=0.5,cold=100,len=100",
		"matrix:r=8,c=8,colmajor=1,passes=1",
		"matrix", // all defaults
	}
	for _, s := range specs {
		tr, err := FromSpec(s, 1)
		if err != nil {
			t.Errorf("%q: %v", s, err)
			continue
		}
		if len(tr) == 0 {
			t.Errorf("%q: empty trace", s)
		}
	}
}

func TestFromSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"unknownkind:len=10",
		"cyclic:n=ten",
		"cyclic:n=10,bogus=1",
		"cyclic:=5",
		"zipf:s=abc",
	}
	for _, s := range bad {
		if _, err := FromSpec(s, 1); err == nil {
			t.Errorf("%q: expected error", s)
		}
	}
}

func TestPhased(t *testing.T) {
	tr := Phased(Sequential(0, 3), Sequential(100, 2))
	if len(tr) != 5 || tr[3] != 100 {
		t.Errorf("Phased = %v", tr)
	}
}

func TestLPWorstCaseComponents(t *testing.T) {
	g := model.NewFixed(8)
	// Pure temporal: one item per block, cycling i+1 items.
	tr, err := LPWorstCase(LPWorstConfig{ItemLayer: 16, BlockLayer: 32,
		BlockSize: 8, SpatialShare: 0, Length: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if d := tr.Distinct(); d != 17 {
		t.Errorf("temporal distinct = %d, want 17", d)
	}
	if s := trace.Summarize(tr, g); s.MeanItemsPerBlock != 1 {
		t.Errorf("temporal items/block = %v, want 1", s.MeanItemsPerBlock)
	}
	// Pure spatial: b/B+1 = 5 blocks, round-robin items.
	tr, err = LPWorstCase(LPWorstConfig{ItemLayer: 16, BlockLayer: 32,
		BlockSize: 8, SpatialShare: 1, Length: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if db := tr.DistinctBlocks(g); db != 5 {
		t.Errorf("spatial blocks = %d, want 5", db)
	}
	// Consecutive accesses always change block (visits rotate).
	for i := 1; i < len(tr); i++ {
		if g.BlockOf(tr[i]) == g.BlockOf(tr[i-1]) {
			t.Fatalf("consecutive same-block accesses at %d", i)
		}
	}
}

func TestLPWorstCaseMixAndValidation(t *testing.T) {
	tr, err := LPWorstCase(LPWorstConfig{ItemLayer: 8, BlockLayer: 16,
		BlockSize: 4, SpatialShare: 0.5, Length: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 1000 {
		t.Fatalf("len = %d", len(tr))
	}
	// Components must not share blocks: temporal items sit below sBase.
	g := model.NewFixed(4)
	sBase := model.Block(9 + 1) // (i+1 blocks) + 1 gap
	tCount, sCount := 0, 0
	for _, it := range tr {
		if g.BlockOf(it) >= sBase {
			sCount++
		} else {
			tCount++
		}
	}
	if sCount < 450 || sCount > 550 {
		t.Errorf("spatial share = %d/1000, want ≈500", sCount)
	}
	if _, err := LPWorstCase(LPWorstConfig{ItemLayer: 0, BlockSize: 4}); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := LPWorstCase(LPWorstConfig{ItemLayer: 4, BlockLayer: 4, BlockSize: 4, SpatialShare: 2}); err == nil {
		t.Error("bad share accepted")
	}
}

func TestFromSpecRejectsHostileSizes(t *testing.T) {
	for _, s := range []string{
		"sequential:len=-5",
		"sequential:len=999999999999",
		"matrix:r=100000,c=100000,passes=10",
	} {
		if _, err := FromSpec(s, 1); err == nil {
			t.Errorf("%q accepted", s)
		}
	}
}

func TestDriftingAlternatesRegimes(t *testing.T) {
	g := model.NewFixed(8)
	d := Drifting{BlockSize: 8, HotItems: 20, SweepBlocks: 16,
		EpochLength: 1000, Epochs: 4}
	tr, err := d.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 4000 {
		t.Fatalf("len = %d", len(tr))
	}
	// Epoch 0: one item per block (no spatial locality).
	s0 := trace.Summarize(tr[:1000], g)
	if s0.MeanItemsPerBlock != 1 {
		t.Errorf("temporal epoch items/block = %v", s0.MeanItemsPerBlock)
	}
	// Epoch 1: sequential sweep (full blocks).
	s1 := trace.Summarize(tr[1000:2000], g)
	if s1.MeanItemsPerBlock < 7 {
		t.Errorf("spatial epoch items/block = %v", s1.MeanItemsPerBlock)
	}
	if _, err := (Drifting{}).Generate(); err == nil {
		t.Error("zero config accepted")
	}
}

func TestStorageServerComponents(t *testing.T) {
	g := model.NewFixed(16)
	s := StorageServer{BlockSize: 16, Streams: 4, RandomUniverse: 4096,
		MetaBlocks: 32, RandomFrac: 0.3, MetaFrac: 0.2, Length: 60000, Seed: 8}
	tr, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 60000 {
		t.Fatalf("len = %d", len(tr))
	}
	var stream, random, meta int
	for _, it := range tr {
		switch {
		case uint64(it) >= 1<<41:
			meta++
		case uint64(it) >= 1<<40:
			random++
		default:
			stream++
		}
	}
	if fr := float64(random) / 60000; fr < 0.25 || fr > 0.35 {
		t.Errorf("random fraction %v", fr)
	}
	if fm := float64(meta) / 60000; fm < 0.15 || fm > 0.25 {
		t.Errorf("meta fraction %v", fm)
	}
	// Stream component is spatially perfect: long block runs.
	st := trace.Summarize(tr, g)
	if st.DistinctBlocks == 0 || st.Requests == 0 {
		t.Fatal("empty summary")
	}
	if _, err := (StorageServer{}).Generate(); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := (StorageServer{BlockSize: 8, Streams: 1, RandomUniverse: 1,
		MetaBlocks: 1, RandomFrac: 0.9, MetaFrac: 0.3, Length: 1}).Generate(); err == nil {
		t.Error("bad mix accepted")
	}
}
