// Package numopt provides the small numeric routines the bound
// cross-checks need: bisection root finding, golden-section maximization,
// and coarse-grid + refinement maximization in one and two dimensions.
//
// The paper solved its linear programs symbolically (in Mathematica);
// this package is the independent numeric check that our transcribed
// closed forms actually maximize the same programs (experiment E5).
package numopt

import "math"

// Bisect finds x in [lo, hi] with f(x) ≈ 0, assuming f is continuous and
// f(lo), f(hi) have opposite signs. It returns the midpoint after iters
// halvings (53 is ample for float64) and ok=false if the signs match.
func Bisect(f func(float64) float64, lo, hi float64, iters int) (float64, bool) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, true
	}
	if fhi == 0 {
		return hi, true
	}
	if (flo > 0) == (fhi > 0) {
		return 0, false
	}
	for i := 0; i < iters; i++ {
		mid := lo + (hi-lo)/2
		fmid := f(mid)
		if fmid == 0 {
			return mid, true
		}
		if (fmid > 0) == (flo > 0) {
			lo, flo = mid, fmid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, true
}

// invPhi is 1/φ, the golden-section step.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenMax maximizes a unimodal f on [lo, hi] by golden-section search,
// returning the maximizing x and f(x).
func GoldenMax(f func(float64) float64, lo, hi float64, iters int) (x, fx float64) {
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < iters; i++ {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	x = (a + b) / 2
	return x, f(x)
}

// GridMax1 maximizes f on [lo, hi] with a coarse scan of n points followed
// by golden-section refinement around the best cell. It tolerates
// non-unimodal f as long as the global maximum's basin spans at least one
// grid cell.
func GridMax1(f func(float64) float64, lo, hi float64, n int) (x, fx float64) {
	if n < 2 {
		n = 2
	}
	bestX, bestF := lo, math.Inf(-1)
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		xi := lo + float64(i)*step
		if v := f(xi); v > bestF {
			bestX, bestF = xi, v
		}
	}
	a := math.Max(lo, bestX-step)
	b := math.Min(hi, bestX+step)
	rx, rfx := GoldenMax(f, a, b, 80)
	if rfx >= bestF {
		return rx, rfx
	}
	return bestX, bestF
}

// GridMax2 maximizes f(x, y) on [xlo,xhi]×[ylo,yhi] with a coarse n×n scan
// followed by two rounds of local refinement.
func GridMax2(f func(x, y float64) float64, xlo, xhi, ylo, yhi float64, n int) (x, y, fxy float64) {
	if n < 2 {
		n = 2
	}
	bestX, bestY, bestF := xlo, ylo, math.Inf(-1)
	scan := func(xa, xb, ya, yb float64) {
		xs := (xb - xa) / float64(n-1)
		ys := (yb - ya) / float64(n-1)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				xi := xa + float64(i)*xs
				yj := ya + float64(j)*ys
				if v := f(xi, yj); v > bestF {
					bestX, bestY, bestF = xi, yj, v
				}
			}
		}
	}
	scan(xlo, xhi, ylo, yhi)
	for round := 0; round < 3; round++ {
		xs := (xhi - xlo) / float64(n-1) / math.Pow(float64(n)/2, float64(round))
		ys := (yhi - ylo) / float64(n-1) / math.Pow(float64(n)/2, float64(round))
		scan(math.Max(xlo, bestX-xs), math.Min(xhi, bestX+xs),
			math.Max(ylo, bestY-ys), math.Min(yhi, bestY+ys))
	}
	return bestX, bestY, bestF
}
