package numopt

import (
	"math"
	"testing"
)

func TestBisectRoot(t *testing.T) {
	x, ok := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 80)
	if !ok {
		t.Fatal("Bisect failed")
	}
	if math.Abs(x-math.Sqrt2) > 1e-9 {
		t.Errorf("root = %v, want √2", x)
	}
}

func TestBisectEndpoints(t *testing.T) {
	if x, ok := Bisect(func(x float64) float64 { return x }, 0, 5, 10); !ok || x != 0 {
		t.Errorf("root at lo: %v %v", x, ok)
	}
	if x, ok := Bisect(func(x float64) float64 { return x - 5 }, 0, 5, 10); !ok || x != 5 {
		t.Errorf("root at hi: %v %v", x, ok)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, ok := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 10); ok {
		t.Error("Bisect claimed a root without sign change")
	}
}

func TestGoldenMax(t *testing.T) {
	x, fx := GoldenMax(func(x float64) float64 { return -(x - 3) * (x - 3) }, 0, 10, 100)
	if math.Abs(x-3) > 1e-6 || math.Abs(fx) > 1e-10 {
		t.Errorf("GoldenMax = %v, %v", x, fx)
	}
}

func TestGridMax1(t *testing.T) {
	// Bimodal: global max at x = 8.
	f := func(x float64) float64 {
		return math.Exp(-(x-2)*(x-2)) + 2*math.Exp(-(x-8)*(x-8))
	}
	x, fx := GridMax1(f, 0, 10, 101)
	if math.Abs(x-8) > 1e-4 {
		t.Errorf("GridMax1 x = %v, want 8", x)
	}
	if math.Abs(fx-2) > 1e-4 {
		t.Errorf("GridMax1 f = %v, want ≈2", fx)
	}
}

func TestGridMax2(t *testing.T) {
	f := func(x, y float64) float64 {
		return -(x-1.5)*(x-1.5) - (y+0.5)*(y+0.5) + 7
	}
	x, y, fxy := GridMax2(f, -5, 5, -5, 5, 41)
	if math.Abs(x-1.5) > 1e-2 || math.Abs(y+0.5) > 1e-2 {
		t.Errorf("GridMax2 at (%v,%v)", x, y)
	}
	if math.Abs(fxy-7) > 1e-3 {
		t.Errorf("GridMax2 value %v, want ≈7", fxy)
	}
}

func TestGridMax1DegenerateN(t *testing.T) {
	x, _ := GridMax1(func(x float64) float64 { return -x * x }, -1, 1, 1)
	if math.Abs(x) > 1e-6 {
		t.Errorf("x = %v, want 0", x)
	}
}
