package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"gccache/internal/model"
)

// FuzzFrameDecode drives the wire decoder with arbitrary byte streams:
// it must never panic, never hand back a payload beyond the frame cap,
// and every payload it accepts must re-encode byte-identically (the
// codec is canonical, so a decode/encode cycle is a fixed point).
func FuzzFrameDecode(f *testing.F) {
	seed := func(typ byte, payload []byte) []byte { return appendFrame(nil, typ, payload) }
	f.Add(seed(fAccessReq, appendAccessReq(nil, 7, []model.Item{1, 2, 3, 900, 4})))
	f.Add(seed(fAccessResp, appendAccessResp(nil, accessResp{Seq: 7, Served: 5, Hits: 2, Misses: 3})))
	f.Add(seed(fHealthReq, nil))
	f.Add(seed(fHealthResp, appendHealthResp(nil, healthResp{State: stateDraining, Accesses: 99})))
	f.Add(seed(fError, appendErrorFrame(nil, errDraining, "node is draining")))
	// Two frames back to back.
	f.Add(append(seed(fHealthReq, nil), seed(fHandoffResp, nil)...))
	// Oversized length declaration: must be rejected before allocation.
	f.Add(append([]byte{fAccessReq}, binary.AppendUvarint(nil, maxFramePayload+1)...))
	f.Add(append([]byte{fHandoffReq}, binary.AppendUvarint(nil, 1<<40)...))
	// Truncated frame: header promises more payload than follows.
	f.Add(append([]byte{fAccessResp}, binary.AppendUvarint(nil, 500)...))
	f.Add(seed(fAccessReq, appendAccessReq(nil, 7, []model.Item{1, 2, 3}))[:5])
	// Batch count larger than the batch.
	f.Add(seed(fAccessReq, append(binary.AppendUvarint(nil, 1), binary.AppendUvarint(nil, maxBatchItems)...)))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for {
			typ, p, err := readFrame(br, buf[:0])
			if err != nil {
				return // clean rejection ends the stream
			}
			if len(p) > maxFramePayload {
				t.Fatalf("readFrame returned %d bytes, cap is %d", len(p), maxFramePayload)
			}
			switch typ {
			case fAccessReq:
				if seq, items, err := decodeAccessReq(p, nil); err == nil {
					if len(items) > maxBatchItems {
						t.Fatalf("accepted a batch of %d items", len(items))
					}
					if got := appendAccessReq(nil, seq, items); !bytes.Equal(got, p) {
						t.Fatalf("access request is not canonical:\n%x\n%x", p, got)
					}
				}
			case fAccessResp:
				if r, err := decodeAccessResp(p); err == nil {
					if got := appendAccessResp(nil, r); !bytes.Equal(got, p) {
						t.Fatalf("access response is not canonical:\n%x\n%x", p, got)
					}
				}
			case fHealthResp:
				if h, err := decodeHealthResp(p); err == nil {
					if got := appendHealthResp(nil, h); !bytes.Equal(got, p) {
						t.Fatalf("health response is not canonical:\n%x\n%x", p, got)
					}
				}
			case fError:
				if we, err := decodeErrorFrame(p); err == nil {
					if got := appendErrorFrame(nil, we.Code, we.Msg); !bytes.Equal(got, p) {
						t.Fatalf("error frame is not canonical:\n%x\n%x", p, got)
					}
				}
			}
			buf = p[:0]
		}
	})
}
