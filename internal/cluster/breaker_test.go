package cluster

import (
	"testing"
	"time"
)

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow(now) {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Record(false, now)
	}
	if b.State() != "closed" {
		t.Fatalf("state %q after 2 of 3 failures", b.State())
	}
	b.Allow(now)
	b.Record(false, now)
	if b.State() != "open" {
		t.Fatalf("state %q after 3 consecutive failures, want open", b.State())
	}
	if b.Allow(now.Add(500 * time.Millisecond)) {
		t.Error("open breaker admitted a request inside the cooldown")
	}
	if b.Trips() != 1 {
		t.Errorf("Trips = %d, want 1", b.Trips())
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(3, time.Second)
	// Interleaved failures never reach 3 consecutive.
	for i := 0; i < 10; i++ {
		b.Allow(now)
		b.Record(false, now)
		b.Allow(now)
		b.Record(false, now)
		b.Allow(now)
		b.Record(true, now)
	}
	if b.State() != "closed" {
		t.Fatalf("state %q, want closed: success must reset the failure run", b.State())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(1, time.Second)
	b.Allow(now)
	b.Record(false, now) // trips immediately at threshold 1
	after := now.Add(1100 * time.Millisecond)
	if !b.Allow(after) {
		t.Fatal("cooldown expired but probe refused")
	}
	if b.State() != "half-open" {
		t.Fatalf("state %q, want half-open", b.State())
	}
	// Exactly one probe: a second concurrent request is refused.
	if b.Allow(after) {
		t.Fatal("second request admitted while the probe is outstanding")
	}
	// Failed probe re-opens for a fresh cooldown.
	b.Record(false, after)
	if b.State() != "open" {
		t.Fatalf("state %q after failed probe, want open", b.State())
	}
	if b.Allow(after.Add(500 * time.Millisecond)) {
		t.Error("re-opened breaker admitted a request inside the new cooldown")
	}
	// Successful probe closes.
	again := after.Add(1100 * time.Millisecond)
	if !b.Allow(again) {
		t.Fatal("second probe refused")
	}
	b.Record(true, again)
	if b.State() != "closed" {
		t.Fatalf("state %q after successful probe, want closed", b.State())
	}
	if !b.Allow(again) {
		t.Error("closed breaker refused a request")
	}
}

func TestBreakerDisabled(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(0, time.Second)
	for i := 0; i < 50; i++ {
		if !b.Allow(now) {
			t.Fatal("disabled breaker refused a request")
		}
		b.Record(false, now)
	}
	if b.State() != "closed" {
		t.Fatalf("disabled breaker state %q", b.State())
	}
}
