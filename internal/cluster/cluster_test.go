package cluster

import (
	"bytes"
	"testing"
	"time"

	"gccache/internal/cachesim"
	"gccache/internal/cluster/ring"
	"gccache/internal/model"
	"gccache/internal/policy"
)

const (
	testK        = 64
	testB        = 8
	testUniverse = 4096
)

func testNodeConfig(addr string) NodeConfig {
	return NodeConfig{
		Addr: addr, K: testK, B: testB, Universe: testUniverse,
		NewCache: func() cachesim.Cache { return policy.NewItemLRUBounded(testK, testUniverse) },
	}
}

// startNodes brings up n loopback nodes and returns them with their
// addresses. Cleanup closes them.
func startNodes(t *testing.T, n int) ([]*Node, []string) {
	t.Helper()
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	for i := range nodes {
		nd, err := NewNode(testNodeConfig("127.0.0.1:0"))
		if err != nil {
			t.Fatal(err)
		}
		addr, err := nd.Start()
		if err != nil {
			t.Fatal(err)
		}
		nodes[i], addrs[i] = nd, addr
		t.Cleanup(func() { nd.Close() })
	}
	return nodes, addrs
}

func testRing(t *testing.T, addrs []string) *ring.Ring {
	t.Helper()
	r, err := ring.New(addrs, 16, 11)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// driveRouted pushes items through the client in owner-grouped batches
// and returns how many batches were issued.
func driveRouted(t *testing.T, c *Client, items []model.Item, batch int) int {
	t.Helper()
	groups := map[int][]model.Item{}
	issued := 0
	for at := 0; at < len(items); at += batch {
		end := at + batch
		if end > len(items) {
			end = len(items)
		}
		for g := range groups {
			groups[g] = groups[g][:0]
		}
		c.Route(items[at:end], groups)
		for g := 0; g < c.ring.Len(); g++ { // deterministic order over the node indices
			sub := groups[g]
			if len(sub) == 0 {
				continue
			}
			issued++
			if err := c.Do(sub); err != nil {
				t.Fatalf("Do: %v", err)
			}
		}
	}
	return issued
}

// TestClusterServesAndAccounts runs a 3-node ring end to end: every
// batch lands on its ring owner, node-side accesses sum to what the
// client sent, and the accounting identity holds with zero mismatches.
func TestClusterServesAndAccounts(t *testing.T) {
	nodes, addrs := startNodes(t, 3)
	c := NewClient(testRing(t, addrs), ClientConfig{Timeout: 2 * time.Second})
	defer c.Close()

	items := make([]model.Item, 4000)
	for i := range items {
		items[i] = model.Item(uint64(i*37) % testUniverse)
	}
	issued := driveRouted(t, c, items, 32)

	st := c.Stats()
	if !st.Identity() {
		t.Fatalf("accounting identity broken: %+v", st)
	}
	if st.Issued != int64(issued) || st.ServedFirstTry != int64(issued) {
		t.Fatalf("fault-free run: issued=%d servedFirstTry=%d, want both %d", st.Issued, st.ServedFirstTry, issued)
	}
	if st.AckMismatches != 0 || st.Rejected != 0 || st.Failovers != 0 {
		t.Fatalf("fault-free run injected faults: %+v", st)
	}
	var nodeAccesses, nodeHits, nodeMisses int64
	for _, nd := range nodes {
		s := nd.Stats()
		nodeAccesses += s.Accesses
		nodeHits += s.Hits
		nodeMisses += s.Misses
	}
	if nodeAccesses != int64(len(items)) {
		t.Errorf("nodes served %d accesses, client sent %d", nodeAccesses, len(items))
	}
	if nodeHits != st.Hits || nodeMisses != st.Misses {
		t.Errorf("hit/miss accounting diverged: nodes %d/%d, client %d/%d", nodeHits, nodeMisses, st.Hits, st.Misses)
	}
	if state, acc, err := c.Health(0); err != nil || state != "ready" {
		t.Errorf("Health(0) = %q/%d/%v, want ready", state, acc, err)
	}
}

// TestDrainingNodeFailsOver drains one node and asserts the ring keeps
// serving: batches owned by the drained node are acked by a successor
// and counted as retried-successfully, never lost, never rejected.
func TestDrainingNodeFailsOver(t *testing.T) {
	nodes, addrs := startNodes(t, 3)
	c := NewClient(testRing(t, addrs), ClientConfig{Timeout: 2 * time.Second})
	defer c.Close()

	nodes[1].Drain()
	if nodes[1].Ready() || !nodes[1].Draining() {
		t.Fatal("Drain did not move the node to draining")
	}
	items := make([]model.Item, 2000)
	for i := range items {
		items[i] = model.Item(uint64(i*13) % testUniverse)
	}
	driveRouted(t, c, items, 16)

	st := c.Stats()
	if !st.Identity() {
		t.Fatalf("accounting identity broken: %+v", st)
	}
	if st.Rejected != 0 {
		t.Fatalf("drained node caused %d rejections, want failover: %+v", st.Rejected, st)
	}
	if st.RetriedOK == 0 || st.Failovers == 0 {
		t.Fatalf("no batches failed over around the drained node: %+v", st)
	}
	if s := nodes[1].Stats(); s.Accesses != 0 {
		t.Errorf("drained node served %d accesses", s.Accesses)
	}
	if state, _, err := c.Health(1); err != nil || state != "draining" {
		t.Errorf("Health(1) = %q/%v, want draining", state, err)
	}
	nodes[1].Resume()
	if !nodes[1].Ready() {
		t.Error("Resume did not restore readiness")
	}
}

// TestKilledNodeFailsOverAndBreakerTrips kills a node outright: its
// batches time out, fail over, and the repeated failures trip the
// breaker so later batches skip the dead node without burning the
// deadline.
func TestKilledNodeFailsOverAndBreakerTrips(t *testing.T) {
	nodes, addrs := startNodes(t, 3)
	c := NewClient(testRing(t, addrs), ClientConfig{
		Timeout:          300 * time.Millisecond,
		Retries:          0,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute, // never half-opens within the test
	})
	defer c.Close()

	nodes[2].Close()
	items := make([]model.Item, 1500)
	for i := range items {
		items[i] = model.Item(uint64(i*29) % testUniverse)
	}
	driveRouted(t, c, items, 16)

	st := c.Stats()
	if !st.Identity() {
		t.Fatalf("accounting identity broken: %+v", st)
	}
	if st.Rejected != 0 {
		t.Fatalf("killed node caused %d rejections despite live successors: %+v", st.Rejected, st)
	}
	if st.RetriedOK == 0 {
		t.Fatalf("no batches failed over around the killed node: %+v", st)
	}
	if st.BreakerSkips == 0 {
		t.Errorf("breaker never short-circuited the dead node: %+v", st)
	}
	if b := c.breakerFor(2); b.State() != "open" {
		t.Errorf("dead node's breaker is %q, want open", b.State())
	}
}

// TestHandoffPreservesStateByteIdentically is the differential test the
// issue demands: run traffic into a node, hand its state to a fresh
// node over the wire, and require the receiver's snapshot to re-encode
// byte-for-byte equal — recency order, counters, shape, everything.
func TestHandoffPreservesStateByteIdentically(t *testing.T) {
	nodes, addrs := startNodes(t, 2)
	src, dst := nodes[0], nodes[1]

	r := testRing(t, addrs[:1])
	c := NewClient(r, ClientConfig{Timeout: 2 * time.Second})
	defer c.Close()
	items := make([]model.Item, 3000)
	for i := range items {
		items[i] = model.Item(uint64(i*i+i) % testUniverse)
	}
	driveRouted(t, c, items, 24)

	before := src.Snapshot().Encode()
	if err := src.HandoffTo(addrs[1], 2*time.Second); err != nil {
		t.Fatalf("HandoffTo: %v", err)
	}
	if !src.Draining() {
		t.Error("source is not draining after handoff")
	}
	after := dst.Snapshot().Encode()
	if !bytes.Equal(before, after) {
		t.Fatalf("handoff changed state: source snapshot %d bytes, receiver %d bytes, contents differ", len(before), len(after))
	}
	// The receiver's cache must actually hold the warm set, not just
	// report matching bytes.
	ss, ds := src.Stats(), dst.Stats()
	if ss != ds {
		t.Errorf("stats diverged: source %+v, receiver %+v", ss, ds)
	}
}

// TestHandoffRefusesShapeMismatch asserts a snapshot from a
// differently-shaped node is rejected with a structured error.
func TestHandoffRefusesShapeMismatch(t *testing.T) {
	src, err := NewNode(testNodeConfig("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	odd, err := NewNode(NodeConfig{
		Addr: "127.0.0.1:0", K: testK * 2, B: testB, Universe: testUniverse,
		NewCache: func() cachesim.Cache { return policy.NewItemLRUBounded(testK*2, testUniverse) },
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := odd.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer odd.Close()
	if err := src.HandoffTo(addr, 2*time.Second); err == nil {
		t.Fatal("handoff to a differently-shaped node succeeded")
	}
	if err := odd.Restore(src.Snapshot()); err == nil {
		t.Fatal("Restore accepted a shape-mismatched snapshot")
	}
}
