package cluster

import (
	"sync"
	"time"
)

// Breaker states.
const (
	bkClosed   = iota // normal: requests flow
	bkOpen            // tripped: requests short-circuit until the cooldown passes
	bkHalfOpen        // probing: exactly one request allowed through
)

// Breaker is a per-node circuit breaker: it trips open after a run of
// consecutive failures, short-circuits requests for a cooldown, then
// lets a single half-open probe decide whether the node is back. Time
// is passed in explicitly so tests drive transitions without sleeping.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	mu sync.Mutex
	//gclint:guardedby mu
	state int
	//gclint:guardedby mu
	consecutive int
	//gclint:guardedby mu
	openUntil time.Time
	//gclint:guardedby mu
	probing bool
	//gclint:guardedby mu
	trips int64
}

// NewBreaker returns a breaker that opens after threshold consecutive
// failures and stays open for cooldown before probing. threshold < 1
// disables tripping entirely.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may be sent at time now. In the open
// state it returns false until the cooldown expires, then admits
// exactly one probe (half-open); further requests are refused until
// that probe's Record call settles the state.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkClosed:
		return true
	case bkOpen:
		if now.Before(b.openUntil) {
			return false
		}
		b.state = bkHalfOpen
		b.probing = true
		return true
	default: // bkHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports the outcome of a request issued at Allow time. A
// success closes the breaker; a failure re-opens a half-open breaker
// immediately and trips a closed one once the consecutive-failure run
// reaches the threshold.
func (b *Breaker) Record(ok bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.state = bkClosed
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.state == bkHalfOpen || (b.threshold > 0 && b.consecutive >= b.threshold) {
		if b.state != bkOpen {
			b.trips++
		}
		b.state = bkOpen
		b.openUntil = now.Add(b.cooldown)
	}
}

// Trips returns how many times the breaker has transitioned to open.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// State returns the current state name, for logs and tests.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkOpen:
		return "open"
	case bkHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
