package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"gccache/internal/cachesim"
	"gccache/internal/checkpoint"
	"gccache/internal/model"
)

// snapshotKind tags cluster-node handoff snapshots.
const snapshotKind = "gccache.cluster-node"

// recencyDumper is the optional cache capability handoff uses to ship
// the warm set. policy.ItemLRU implements it; policies that load at
// block granularity do not (replaying their warm set item-by-item
// would reconstruct different state), so they hand off stats only.
type recencyDumper interface {
	AppendRecency(dst []model.Item) []model.Item
}

// Snapshot captures the node's state as a checkpoint snapshot: the
// shape meta (k, B, universe), the accounting stats in the canonical
// cachesim codec, and — when the policy exposes its recency order — a
// "warmset" section listing the cached items LRU-first as zig-zag
// deltas. Encoding an equal state yields identical bytes, which the
// handoff differential test asserts across the wire.
func (n *Node) Snapshot() *checkpoint.Snapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := &checkpoint.Snapshot{
		Kind: snapshotKind,
		Meta: map[string]int64{
			"k":        int64(n.cfg.K),
			"B":        int64(n.cfg.B),
			"universe": int64(n.cfg.Universe),
		},
		Sections: map[string][]byte{
			"stats": cachesim.AppendStats(nil, cachesim.Stats{
				Policy:   n.cache.Name(),
				Accesses: n.accesses,
				Hits:     n.hits,
				Misses:   n.misses,
			}),
		},
	}
	if rd, ok := n.cache.(recencyDumper); ok {
		s.Sections["warmset"] = appendWarmset(nil, rd)
	}
	return s
}

// appendWarmset encodes the cache's items LRU-first (the replay order:
// accessing each in turn rebuilds the identical recency list).
func appendWarmset(dst []byte, rd recencyDumper) []byte {
	mru := rd.AppendRecency(nil) // MRU-first
	dst = binary.AppendUvarint(dst, uint64(len(mru)))
	prev := int64(0)
	for i := len(mru) - 1; i >= 0; i-- { // reverse: LRU-first
		v := int64(mru[i])
		dst = binary.AppendVarint(dst, v-prev)
		prev = v
	}
	return dst
}

// Restore merges a handoff snapshot into the node: the warm set is
// replayed through the cache (LRU-first, so the recency order lands
// exactly as the sender had it) without touching the node's counters,
// then the sender's stats are added to them. Restoring into a fresh
// node therefore reproduces the sender's state — and its Snapshot
// bytes — exactly. A snapshot from a differently-shaped node (k, B,
// universe, or policy mismatch) is refused.
func (n *Node) Restore(s *checkpoint.Snapshot) error {
	if s.Kind != snapshotKind {
		return fmt.Errorf("cluster: snapshot kind %q, want %q", s.Kind, snapshotKind)
	}
	for _, m := range [...]struct {
		key  string
		want int64
	}{{"k", int64(n.cfg.K)}, {"B", int64(n.cfg.B)}, {"universe", int64(n.cfg.Universe)}} {
		if got := s.MetaInt(m.key, -1); got != m.want {
			return fmt.Errorf("cluster: snapshot %s=%d, this node has %d", m.key, got, m.want)
		}
	}
	raw := s.Get("stats")
	if raw == nil {
		return fmt.Errorf("cluster: snapshot has no stats section")
	}
	st, rest, err := cachesim.DecodeStats(raw)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("cluster: %d trailing bytes in stats section", len(rest))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if st.Policy != n.cache.Name() {
		return fmt.Errorf("cluster: snapshot policy %q, this node runs %q", st.Policy, n.cache.Name())
	}
	if ws := s.Get("warmset"); ws != nil {
		if err := n.replayWarmset(ws); err != nil {
			return err
		}
	}
	n.accesses += st.Accesses
	n.hits += st.Hits
	n.misses += st.Misses
	return nil
}

// replayWarmset decodes and replays a warmset section with n.mu held.
// Replay accesses do not count: they reconstruct state, they were
// already counted on the sender.
func (n *Node) replayWarmset(ws []byte) error {
	d := &payloadDecoder{b: ws}
	count, err := d.uvarint("warmset count")
	if err != nil {
		return err
	}
	if count > uint64(n.cfg.K) || count > uint64(len(ws)) {
		return fmt.Errorf("cluster: warmset declares %d items (cache holds %d, section has %d bytes)", count, n.cfg.K, len(ws))
	}
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := d.varint("warmset item delta")
		if err != nil {
			return err
		}
		prev += delta
		if prev < 0 {
			return fmt.Errorf("cluster: warmset decodes to negative item %d", prev)
		}
		n.cache.Access(model.Item(prev)) //gclint:guardok caller (Restore) holds n.mu; documented on the method
	}
	return d.done("warmset")
}

// acceptHandoff is the node side of a handoff frame.
func (n *Node) acceptHandoff(payload []byte) error {
	s, err := checkpoint.Decode(payload)
	if err != nil {
		return err
	}
	return n.Restore(s)
}

// HandoffTo drains the node, snapshots its state, and streams the
// snapshot to the cluster node at addr, waiting for the ack under
// timeout. On success the node stays drained (the caller typically
// exits); on failure it stays drained too, so the caller can retry a
// different target or Resume.
func (n *Node) HandoffTo(addr string, timeout time.Duration) error {
	n.Drain()
	raw := n.Snapshot().Encode()
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return fmt.Errorf("cluster: handoff dial %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout)) //nolint:errcheck // best-effort
	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, fHandoffReq, raw); err != nil {
		return fmt.Errorf("cluster: handoff send to %s: %w", addr, err)
	}
	typ, payload, err := readFrame(bufio.NewReader(conn), nil)
	if err != nil {
		return fmt.Errorf("cluster: handoff ack from %s: %w", addr, err)
	}
	switch typ {
	case fHandoffResp:
		return nil
	case fError:
		we, derr := decodeErrorFrame(payload)
		if derr != nil {
			return derr
		}
		return we
	default:
		return fmt.Errorf("cluster: handoff answered with frame type %#02x", typ)
	}
}
