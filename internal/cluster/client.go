package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gccache/internal/cluster/ring"
	"gccache/internal/model"
)

// ClientConfig tunes the cluster client. The zero value gets sane
// defaults from NewClient.
type ClientConfig struct {
	// Timeout is the per-request deadline (dial + write + read).
	Timeout time.Duration
	// Retries is how many times one node is retried after its first
	// failure before the client fails over to the next ring successor.
	Retries int
	// Failover is how many distinct successors to try after the owner:
	// 0 (the zero value) means every other node in the ring, negative
	// means none — the owner is the only node tried.
	Failover int
	// BackoffBase and BackoffCap bound the capped exponential backoff
	// slept between retries; the actual sleep is jittered in
	// [50%, 100%] of the nominal value by a seeded hash, so reruns
	// back off identically and herds of clients do not synchronize.
	BackoffBase, BackoffCap time.Duration
	// BreakerThreshold consecutive failures trip a node's breaker open
	// for BreakerCooldown; an open breaker short-circuits the node
	// without burning the request deadline. Threshold < 1 disables.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Seed drives the backoff jitter.
	Seed int64
}

func (c *ClientConfig) fill() {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 250 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 500 * time.Millisecond
	}
}

// ClientStats is a snapshot of the client's accounting counters. The
// identity Issued == ServedFirstTry + RetriedOK + Rejected holds at
// every quiescent point; the chaos harness asserts it after every run.
type ClientStats struct {
	// Issued counts batch requests handed to Do.
	Issued int64
	// ServedFirstTry counts batches acked by the first attempt on the
	// owning node.
	ServedFirstTry int64
	// RetriedOK counts batches acked only after a retry or failover.
	RetriedOK int64
	// Rejected counts batches that exhausted every node in the chain.
	Rejected int64
	// Attempts counts individual request attempts (≥ Issued).
	Attempts int64
	// Failovers counts attempts routed past the owning node.
	Failovers int64
	// BreakerSkips counts nodes short-circuited by an open breaker.
	BreakerSkips int64
	// AckMismatches counts acked responses whose served count did not
	// cover the batch — always zero unless a node violates the
	// protocol; "no lost acknowledged ops" rests on it.
	AckMismatches int64
	// Hits and Misses accumulate the per-batch outcome counts reported
	// by acking nodes.
	Hits, Misses int64
}

// clientConn is one pooled connection to a node, used serially.
type clientConn struct {
	mu sync.Mutex
	//gclint:guardedby mu
	conn net.Conn
	//gclint:guardedby mu
	br *bufio.Reader
	//gclint:guardedby mu
	bw *bufio.Writer
	//gclint:guardedby mu
	seq uint64
	//gclint:guardedby mu
	buf []byte // frame read scratch
	//gclint:guardedby mu
	out []byte // frame write scratch
}

// Client routes access batches to the ring, with per-request deadlines,
// capped-backoff retries, per-node circuit breakers, and ring-successor
// failover. Safe for concurrent use; connections are per-node and
// serialized, so concurrency across nodes is free and concurrency to
// one node queues.
type Client struct {
	ring *ring.Ring
	cfg  ClientConfig

	mu sync.Mutex
	//gclint:guardedby mu
	conns map[int]*clientConn
	//gclint:guardedby mu
	breakers map[int]*Breaker

	issued, servedFirst, retriedOK, rejected atomic.Int64
	attempts, failovers, breakerSkips        atomic.Int64
	ackMismatches, hits, misses              atomic.Int64
}

// NewClient returns a client over r. See ClientConfig for defaults.
func NewClient(r *ring.Ring, cfg ClientConfig) *Client {
	cfg.fill()
	switch {
	case cfg.Failover == 0, cfg.Failover > r.Len()-1:
		cfg.Failover = r.Len() - 1
	case cfg.Failover < 0:
		cfg.Failover = 0
	}
	return &Client{
		ring:     r,
		cfg:      cfg,
		conns:    make(map[int]*clientConn),
		breakers: make(map[int]*Breaker),
	}
}

// Stats returns a snapshot of the accounting counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Issued:         c.issued.Load(),
		ServedFirstTry: c.servedFirst.Load(),
		RetriedOK:      c.retriedOK.Load(),
		Rejected:       c.rejected.Load(),
		Attempts:       c.attempts.Load(),
		Failovers:      c.failovers.Load(),
		BreakerSkips:   c.breakerSkips.Load(),
		AckMismatches:  c.ackMismatches.Load(),
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
	}
}

// Identity reports whether the accounting identity holds for s.
func (s ClientStats) Identity() bool {
	return s.Issued == s.ServedFirstTry+s.RetriedOK+s.Rejected
}

func (c *Client) connTo(node int) *clientConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	cc := c.conns[node]
	if cc == nil {
		cc = &clientConn{}
		c.conns[node] = cc
	}
	return cc
}

func (c *Client) breakerFor(node int) *Breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[node]
	if b == nil {
		b = NewBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown)
		c.breakers[node] = b
	}
	return b
}

// backoff returns the jittered sleep before retry number n (0-based) of
// attempt counter a. Deterministic in (seed, a): reruns back off the
// same way.
func (c *Client) backoff(n int, a uint64) time.Duration {
	d := c.cfg.BackoffBase << uint(n)
	if d > c.cfg.BackoffCap || d <= 0 {
		d = c.cfg.BackoffCap
	}
	// Jitter into [50%, 100%] with the SplitMix64 finalizer over
	// (seed, attempt) so concurrent clients spread out.
	h := uint64(c.cfg.Seed)*0x9e3779b97f4a7c15 + a
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	frac := float64(h>>11) / (1 << 53) // [0, 1)
	return time.Duration(float64(d) * (0.5 + frac/2))
}

// Do routes one batch of accesses to the node owning its first item and
// blocks until the batch is acked or every node in the failover chain
// is exhausted. Batches built by a ring-aware caller (see Route) are
// single-owner; Do itself does not split mixed batches — the owning
// node of items[0] serves them all, which keeps an ack atomic.
func (c *Client) Do(items []model.Item) error {
	if len(items) == 0 {
		return nil
	}
	if len(items) > maxBatchItems {
		return fmt.Errorf("cluster: batch of %d items exceeds protocol cap %d", len(items), maxBatchItems)
	}
	c.issued.Add(1)
	chain := c.ring.Chain(items[0], 1+c.cfg.Failover)
	var lastErr error
	for hop, node := range chain {
		br := c.breakerFor(node)
		for try := 0; try <= c.cfg.Retries; try++ {
			now := time.Now()
			if !br.Allow(now) {
				c.breakerSkips.Add(1)
				break // next node in the chain
			}
			a := c.attempts.Add(1)
			if hop > 0 {
				c.failovers.Add(1)
			}
			resp, err := c.exchange(node, items)
			br.Record(err == nil, time.Now())
			if err == nil {
				if resp.Served != uint64(len(items)) {
					c.ackMismatches.Add(1)
				}
				c.hits.Add(int64(resp.Hits))
				c.misses.Add(int64(resp.Misses))
				if hop == 0 && try == 0 {
					c.servedFirst.Add(1)
				} else {
					c.retriedOK.Add(1)
				}
				return nil
			}
			lastErr = err
			if we, ok := err.(*WireError); ok && we.IsDraining() {
				break // the node told us to go elsewhere; don't retry it
			}
			if try < c.cfg.Retries {
				time.Sleep(c.backoff(try, uint64(a)))
			}
		}
	}
	c.rejected.Add(1)
	return fmt.Errorf("cluster: batch rejected after %d-node chain: %w", len(chain), lastErr)
}

// Route appends each item of batch to by[owner], allocating per-owner
// slices in by as needed. Callers reuse by across batches to group a
// mixed stream into the single-owner sub-batches Do expects.
func (c *Client) Route(batch []model.Item, by map[int][]model.Item) {
	for _, it := range batch {
		o := c.ring.Owner(it)
		by[o] = append(by[o], it)
	}
}

// Health asks node (by ring index) for its lifecycle state.
func (c *Client) Health(node int) (state string, accesses uint64, err error) {
	h, err := c.health(node)
	if err != nil {
		return "", 0, err
	}
	switch h.State {
	case stateReady:
		state = "ready"
	case stateDraining:
		state = "draining"
	default:
		state = "stopped"
	}
	return state, h.Accesses, nil
}

func (c *Client) health(node int) (healthResp, error) {
	cc := c.connTo(node)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	typ, payload, err := c.roundTrip(cc, node, fHealthReq, nil)
	if err != nil {
		return healthResp{}, err
	}
	if typ != fHealthResp {
		return healthResp{}, fmt.Errorf("cluster: node answered health with frame type %#02x", typ)
	}
	return decodeHealthResp(payload)
}

// exchange performs one access request/response on node's pooled
// connection, dialing if needed. Any transport failure closes the
// connection so the next attempt redials.
func (c *Client) exchange(node int, items []model.Item) (accessResp, error) {
	cc := c.connTo(node)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.seq++
	cc.out = appendAccessReq(cc.out[:0], cc.seq, items)
	typ, payload, err := c.roundTrip(cc, node, fAccessReq, cc.out)
	if err != nil {
		return accessResp{}, err
	}
	if typ != fAccessResp {
		return accessResp{}, fmt.Errorf("cluster: node answered access with frame type %#02x", typ)
	}
	resp, err := decodeAccessResp(payload)
	if err != nil {
		return accessResp{}, err
	}
	if resp.Seq != cc.seq {
		// A stale response (e.g. from before a timeout) desynchronizes
		// the stream; drop the connection rather than mis-attribute it.
		cc.reset()
		return accessResp{}, fmt.Errorf("cluster: response seq %d, want %d", resp.Seq, cc.seq)
	}
	return resp, nil
}

// roundTrip sends one frame and reads the reply under the deadline,
// with cc.mu held. Error frames decode to *WireError; transport errors
// reset the connection.
func (c *Client) roundTrip(cc *clientConn, node int, typ byte, payload []byte) (byte, []byte, error) {
	deadline := time.Now().Add(c.cfg.Timeout)
	if cc.conn == nil { //gclint:guardok caller holds cc.mu; documented on the method
		conn, err := net.DialTimeout("tcp", c.ring.Node(node), time.Until(deadline))
		if err != nil {
			return 0, nil, err
		}
		cc.conn, cc.br, cc.bw = conn, bufio.NewReader(conn), bufio.NewWriter(conn) //gclint:guardok caller holds cc.mu
	}
	if err := cc.conn.SetDeadline(deadline); err != nil { //gclint:guardok caller holds cc.mu
		cc.reset()
		return 0, nil, err
	}
	if err := writeFrame(cc.bw, typ, payload); err != nil { //gclint:guardok caller holds cc.mu
		cc.reset()
		return 0, nil, err
	}
	rtyp, rp, err := readFrame(cc.br, cc.buf[:0]) //gclint:guardok caller holds cc.mu
	if err != nil {
		cc.reset()
		return 0, nil, err
	}
	cc.buf = rp[:0] //gclint:guardok caller holds cc.mu
	if rtyp == fError {
		we, err := decodeErrorFrame(rp)
		if err != nil {
			cc.reset()
			return 0, nil, err
		}
		return 0, nil, we
	}
	return rtyp, rp, nil
}

// reset drops the pooled connection; the next attempt redials. Called
// with cc.mu held.
func (cc *clientConn) reset() {
	if cc.conn != nil { //gclint:guardok caller holds cc.mu; documented on the method
		cc.conn.Close()                       //gclint:guardok caller holds cc.mu
		cc.conn, cc.br, cc.bw = nil, nil, nil //gclint:guardok caller holds cc.mu
	}
}

// Close drops every pooled connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cc := range c.conns {
		cc.mu.Lock()
		cc.reset()
		cc.mu.Unlock()
	}
}
