package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gccache/internal/cachesim"
	"gccache/internal/model"
)

// NodeConfig describes one cluster node.
type NodeConfig struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral
	// test port).
	Addr string
	// K and B are the cache capacity and block size; handoff refuses
	// snapshots from a differently-shaped node.
	K, B int
	// Universe is the bounded item universe (0 = unbounded), recorded
	// in handoff snapshots for the same shape check.
	Universe int
	// NewCache constructs the node's cache policy. Required.
	NewCache func() cachesim.Cache
}

// Node is one member of the cache ring: a TCP server applying access
// batches to a single cache under a mutex, with a drain/handoff
// lifecycle. Wire concurrency is per-connection; the cache itself is
// serialized, mirroring one shard of the sharded engine.
type Node struct {
	cfg   NodeConfig
	state atomic.Int32 // stateReady / stateDraining / stateStopped

	ln net.Listener
	wg sync.WaitGroup

	mu sync.Mutex
	//gclint:guardedby mu
	cache cachesim.Cache
	//gclint:guardedby mu
	accesses int64
	//gclint:guardedby mu
	hits int64
	//gclint:guardedby mu
	misses int64
	//gclint:guardedby mu
	conns map[net.Conn]struct{}
	//gclint:guardedby mu
	itemScratch []model.Item
}

// NewNode validates cfg and builds the node (not yet listening).
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.NewCache == nil {
		return nil, fmt.Errorf("cluster: NodeConfig.NewCache is required")
	}
	if cfg.K < 1 || cfg.B < 1 {
		return nil, fmt.Errorf("cluster: node needs k ≥ 1 and B ≥ 1 (got k=%d B=%d)", cfg.K, cfg.B)
	}
	n := &Node{
		cfg:   cfg,
		cache: cfg.NewCache(),
		conns: make(map[net.Conn]struct{}),
	}
	n.state.Store(stateReady)
	return n, nil
}

// Start binds the listener and begins serving. It returns the bound
// address (useful with ":0").
func (n *Node) Start() (string, error) {
	ln, err := net.Listen("tcp", n.cfg.Addr)
	if err != nil {
		return "", fmt.Errorf("cluster: node listen %s: %w", n.cfg.Addr, err)
	}
	n.ln = ln
	n.wg.Add(1)
	go n.acceptLoop()
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or the configured one before Start.
func (n *Node) Addr() string {
	if n.ln != nil {
		return n.ln.Addr().String()
	}
	return n.cfg.Addr
}

// Ready reports whether the node accepts new access batches.
func (n *Node) Ready() bool { return n.state.Load() == stateReady }

// Draining reports whether the node is refusing new work while
// remaining reachable for health checks and handoff.
func (n *Node) Draining() bool { return n.state.Load() == stateDraining }

// Drain moves the node to the draining state: access batches are
// rejected with a structured draining error (clients fail over), while
// health and handoff frames still work.
func (n *Node) Drain() { n.state.CompareAndSwap(stateReady, stateDraining) }

// Resume returns a draining node to ready — the back-out path when a
// planned handoff is aborted.
func (n *Node) Resume() { n.state.CompareAndSwap(stateDraining, stateReady) }

// Stats returns the node's accounting counters.
func (n *Node) Stats() cachesim.Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return cachesim.Stats{
		Policy:   n.cache.Name(),
		Accesses: n.accesses,
		Hits:     n.hits,
		Misses:   n.misses,
	}
}

// Close stops the node: the listener and every live connection are
// closed and the handlers joined. Idempotent.
func (n *Node) Close() error {
	n.state.Store(stateStopped)
	var err error
	if n.ln != nil {
		err = n.ln.Close()
		if errors.Is(err, net.ErrClosed) {
			err = nil
		}
	}
	n.mu.Lock()
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		stopped := n.state.Load() == stateStopped
		if !stopped {
			n.conns[conn] = struct{}{}
		}
		n.mu.Unlock()
		if stopped {
			conn.Close()
			return
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

func (n *Node) dropConn(conn net.Conn) {
	conn.Close()
	n.mu.Lock()
	delete(n.conns, conn)
	n.mu.Unlock()
}

// serveConn handles one client connection: a loop of request frames,
// each answered with a response or a structured error frame. Malformed
// frames get an error answer and close the connection; the decoder's
// caps guarantee a hostile peer cannot make the node allocate beyond
// the frame cap.
func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer n.dropConn(conn)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var buf, out []byte
	var items []model.Item
	for {
		// An idle-read ceiling so stopped nodes' handlers never linger.
		conn.SetReadDeadline(time.Now().Add(time.Minute)) //nolint:errcheck // best-effort
		typ, payload, err := readFrame(br, buf[:0])
		if err != nil {
			return
		}
		buf = payload[:0]
		switch typ {
		case fAccessReq:
			seq, batch, err := decodeAccessReq(payload, items[:0])
			items = batch[:0]
			if err != nil {
				writeFrame(bw, fError, appendErrorFrame(out[:0], errBadFrame, err.Error())) //nolint:errcheck // closing anyway
				return
			}
			if n.state.Load() != stateReady {
				if writeFrame(bw, fError, appendErrorFrame(out[:0], errDraining, "node is draining")) != nil {
					return
				}
				continue
			}
			resp := n.apply(seq, batch)
			if writeFrame(bw, fAccessResp, appendAccessResp(out[:0], resp)) != nil {
				return
			}
		case fHealthReq:
			n.mu.Lock()
			acc := n.accesses
			n.mu.Unlock()
			h := healthResp{State: byte(n.state.Load()), Accesses: uint64(acc)}
			if writeFrame(bw, fHealthResp, appendHealthResp(out[:0], h)) != nil {
				return
			}
		case fHandoffReq:
			if err := n.acceptHandoff(payload); err != nil {
				if writeFrame(bw, fError, appendErrorFrame(out[:0], errInternal, err.Error())) != nil {
					return
				}
				continue
			}
			if writeFrame(bw, fHandoffResp, nil) != nil {
				return
			}
		default:
			writeFrame(bw, fError, appendErrorFrame(out[:0], errBadFrame, fmt.Sprintf("unknown frame type %#02x", typ))) //nolint:errcheck // closing anyway
			return
		}
	}
}

// WithCache runs f on the node's cache under the same mutex that
// serializes batch application. It is the control-plane entry point for
// mutations that must not race Access — the autotune controller's
// resize apply in particular (cachesim.LayerResizable requires callers
// to hold the Access lock). f must not call back into the Node.
func (n *Node) WithCache(f func(cachesim.Cache)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	f(n.cache)
}

// apply runs one acked batch against the cache. The ack covers the
// whole batch: every item is applied and counted before the response
// is built.
func (n *Node) apply(seq uint64, batch []model.Item) accessResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := accessResp{Seq: seq, Served: uint64(len(batch))}
	for _, it := range batch {
		if n.cache.Access(it).Hit {
			resp.Hits++
		} else {
			resp.Misses++
		}
	}
	n.accesses += int64(len(batch))
	n.hits += int64(resp.Hits)
	n.misses += int64(resp.Misses)
	return resp
}
