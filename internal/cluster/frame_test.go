package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"gccache/internal/model"
)

func TestFrameRoundTrip(t *testing.T) {
	var net bytes.Buffer
	bw := bufio.NewWriter(&net)
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 3000)}
	for i, p := range payloads {
		if err := writeFrame(bw, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&net)
	var buf []byte
	for i, p := range payloads {
		typ, got, err := readFrame(br, buf[:0])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != byte(i+1) {
			t.Fatalf("frame %d: type %d, want %d", i, typ, i+1)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload %x, want %x", i, got, p)
		}
		buf = got[:0]
	}
}

// TestReadFrameRejectsOversizedDeclaration pins the prealloc-DoS guard:
// a header declaring more than the cap fails before any payload is
// read or allocated.
func TestReadFrameRejectsOversizedDeclaration(t *testing.T) {
	hdr := append([]byte{fAccessReq}, binary.AppendUvarint(nil, maxFramePayload+1)...)
	_, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr)), nil)
	if err == nil {
		t.Fatal("oversized frame declaration accepted")
	}
	if !strings.Contains(err.Error(), "exceeds cap") {
		t.Errorf("error %q does not name the cap", err)
	}
}

func TestReadFrameRejectsTruncation(t *testing.T) {
	var b bytes.Buffer
	bw := bufio.NewWriter(&b)
	if err := writeFrame(bw, fAccessReq, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	full := b.Bytes()
	for n := 0; n < len(full); n++ {
		if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(full[:n])), nil); err == nil {
			t.Fatalf("truncation to %d bytes read a frame", n)
		}
	}
}

func TestWriteFrameRefusesOversizedPayload(t *testing.T) {
	err := writeFrame(bufio.NewWriter(&bytes.Buffer{}), fHandoffReq, make([]byte, maxFramePayload+1))
	if err == nil {
		t.Fatal("oversized payload sent")
	}
}

func TestAccessReqRoundTrip(t *testing.T) {
	items := []model.Item{0, 1, 2, 100, 50, 1 << 40, 7}
	p := appendAccessReq(nil, 42, items)
	seq, got, err := decodeAccessReq(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || len(got) != len(items) {
		t.Fatalf("decoded seq=%d n=%d, want 42/%d", seq, len(got), len(items))
	}
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("item %d: %d, want %d", i, got[i], items[i])
		}
	}
	// Dense runs must cost ~1 byte per item (the point of delta coding).
	dense := make([]model.Item, 1000)
	for i := range dense {
		dense[i] = model.Item(i)
	}
	if n := len(appendAccessReq(nil, 1, dense)); n > 1100 {
		t.Errorf("dense 1000-item batch encoded to %d bytes, want ≈1000", n)
	}
}

func TestDecodeAccessReqRejectsBadInput(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		wantErr string
	}{
		{"empty", nil, "truncated access seq"},
		{"no-count", binary.AppendUvarint(nil, 1), "truncated access item count"},
		{"count-over-cap", append(binary.AppendUvarint(nil, 1), binary.AppendUvarint(nil, maxBatchItems+1)...), "implausible batch"},
		{"count-past-input", append(binary.AppendUvarint(nil, 1), binary.AppendUvarint(nil, 60000)...), "exceeds remaining input"},
		{"truncated-items", append(append(binary.AppendUvarint(nil, 1), 3), 0), "truncated access item delta"},
		{"negative-item", append(append(binary.AppendUvarint(nil, 1), 1), binary.AppendVarint(nil, -5)...), "negative item"},
		{"trailing", append(appendAccessReq(nil, 1, []model.Item{4}), 9), "trailing bytes"},
		// Found by FuzzFrameDecode: a zero-padded varint decodes to the
		// same value but re-encodes shorter, breaking canonical form.
		{"non-minimal-varint", []byte{0xe5, 0xe5, 0x00, 0x00}, "non-minimal varint"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := decodeAccessReq(c.payload, nil)
			if err == nil {
				t.Fatalf("accepted %s payload", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestAccessRespRoundTrip(t *testing.T) {
	want := accessResp{Seq: 9, Served: 16, Hits: 11, Misses: 5}
	got, err := decodeAccessResp(appendAccessResp(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip changed response: %+v vs %+v", got, want)
	}
	if _, err := decodeAccessResp(append(appendAccessResp(nil, want), 1)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := decodeAccessResp(nil); err == nil {
		t.Error("empty response accepted")
	}
}

func TestHealthRespRoundTrip(t *testing.T) {
	for _, want := range []healthResp{{stateReady, 0}, {stateDraining, 123}, {stateStopped, 1 << 40}} {
		got, err := decodeHealthResp(appendHealthResp(nil, want))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round trip changed health: %+v vs %+v", got, want)
		}
	}
	if _, err := decodeHealthResp(nil); err == nil {
		t.Error("empty health accepted")
	}
	if _, err := decodeHealthResp(append([]byte{9}, binary.AppendUvarint(nil, 1)...)); err == nil {
		t.Error("unknown state accepted")
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	we, err := decodeErrorFrame(appendErrorFrame(nil, errDraining, "node is draining"))
	if err != nil {
		t.Fatal(err)
	}
	if we.Code != errDraining || we.Msg != "node is draining" || !we.IsDraining() {
		t.Fatalf("decoded %+v", we)
	}
	if we.Error() == "" {
		t.Error("empty Error() text")
	}
	// Oversized messages are truncated on encode, rejected on decode.
	p := appendErrorFrame(nil, errInternal, strings.Repeat("x", maxErrMsgLen*2))
	if we, err := decodeErrorFrame(p); err != nil || len(we.Msg) != maxErrMsgLen {
		t.Errorf("truncated encode round trip: %v, msg len %d", err, len(we.Msg))
	}
	bad := append(binary.AppendUvarint(nil, 1), binary.AppendUvarint(nil, maxErrMsgLen+1)...)
	if _, err := decodeErrorFrame(bad); err == nil {
		t.Error("oversized message declaration accepted")
	}
	if _, err := decodeErrorFrame(append(binary.AppendUvarint(nil, 1), binary.AppendUvarint(nil, 4)...)); err == nil {
		t.Error("message past input accepted")
	}
}
