// Package ring implements the consistent-hash placement function of the
// gcserve cluster: a fixed set of named nodes, each projected onto a
// 64-bit hash circle as a configurable number of virtual points, with
// every item owned by the first point clockwise from its hash.
//
// Placement is a pure function of (seed, node names, replica count) —
// no wall clock, no map iteration, no global randomness — so two
// processes given the same ring file route every item identically, and
// a rerun of a chaos scenario exercises the same owners. The file-level
// //gclint:repro directive below opts the package into gclint's
// determinism analyzer, which enforces exactly that.
//
//gclint:repro
package ring

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gccache/internal/model"
)

// golden is the SplitMix64 increment; mix is its avalanche finalizer.
// The same constants drive internal/faults' injection schedules, so the
// two stay comparable when debugging a seeded chaos run.
const golden = 0x9e3779b97f4a7c15

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// strhash is FNV-1a over the node name: stable across processes and Go
// versions, unlike the runtime's seeded map hash.
func strhash(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// point is one virtual node on the hash circle.
type point struct {
	hash uint64
	node int32
}

// Ring is an immutable consistent-hash ring over a static node set. All
// methods are safe for concurrent use.
type Ring struct {
	seed     uint64
	replicas int
	nodes    []string
	points   []point // sorted by (hash, node) — the circle
}

// New builds a ring placing each of nodes as replicas virtual points,
// seeded so that equal inputs produce identical placement. Node names
// must be non-empty and unique.
func New(nodes []string, replicas int, seed int64) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("ring: no nodes")
	}
	if replicas < 1 {
		return nil, fmt.Errorf("ring: %d virtual points per node (want ≥ 1)", replicas)
	}
	r := &Ring{
		seed:     uint64(seed),
		replicas: replicas,
		nodes:    append([]string(nil), nodes...),
		points:   make([]point, 0, len(nodes)*replicas),
	}
	seen := make(map[string]bool, len(nodes))
	for i, n := range r.nodes {
		if n == "" {
			return nil, fmt.Errorf("ring: node %d has an empty name", i)
		}
		if seen[n] {
			return nil, fmt.Errorf("ring: duplicate node %q", n)
		}
		seen[n] = true
		h := r.seed ^ strhash(n)
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{
				hash: mix(h ^ uint64(v+1)*golden),
				node: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (astronomically rare) break by node index so the
		// circle order never depends on input order alone.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Len returns the number of nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Replicas returns the virtual points per node.
func (r *Ring) Replicas() int { return r.replicas }

// Node returns the name of node i.
func (r *Ring) Node(i int) string { return r.nodes[i] }

// Nodes returns a copy of the node names in their configured order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// itemHash projects an item onto the circle.
func (r *Ring) itemHash(it model.Item) uint64 {
	return mix(r.seed ^ uint64(it)*golden)
}

// search returns the index of the first point clockwise from hash h.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0 // wrap
	}
	return i
}

// Owner returns the index of the node owning item it.
func (r *Ring) Owner(it model.Item) int {
	return int(r.points[r.search(r.itemHash(it))].node)
}

// Chain returns up to max distinct node indices for item it: the owner
// first, then the failover successors in circle order. It always
// returns at least the owner.
func (r *Ring) Chain(it model.Item, max int) []int {
	if max < 1 {
		max = 1
	}
	if max > len(r.nodes) {
		max = len(r.nodes)
	}
	out := make([]int, 0, max)
	seen := make([]bool, len(r.nodes))
	at := r.search(r.itemHash(it))
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		n := r.points[(at+i)%len(r.points)].node
		if !seen[n] {
			seen[n] = true
			out = append(out, int(n))
		}
	}
	return out
}

// Successor returns the name of the first distinct node clockwise from
// node's first virtual point — the natural handoff target when node
// leaves the ring. ok is false when node is unknown or alone.
func (r *Ring) Successor(node string) (string, bool) {
	self := int32(-1)
	for i, n := range r.nodes {
		if n == node {
			self = int32(i)
		}
	}
	if self < 0 || len(r.nodes) < 2 {
		return "", false
	}
	first := -1
	for i, p := range r.points {
		if p.node == self {
			first = i
			break
		}
	}
	for i := 1; i < len(r.points); i++ {
		if n := r.points[(first+i)%len(r.points)].node; n != self {
			return r.nodes[n], true
		}
	}
	return "", false
}

// Parse reads a ring file: one node address per line, blank lines and
// #-comments ignored.
func Parse(rd io.Reader) ([]string, error) {
	var nodes []string
	sc := bufio.NewScanner(rd)
	for line := 1; sc.Scan(); line++ {
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		if strings.ContainsAny(s, " \t") {
			return nil, fmt.Errorf("ring: line %d: address %q contains whitespace", line, s)
		}
		nodes = append(nodes, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ring: %w", err)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("ring: file lists no nodes")
	}
	return nodes, nil
}

// LoadFile reads and parses the ring file at path.
func LoadFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ring: %w", err)
	}
	defer f.Close()
	nodes, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return nodes, nil
}
