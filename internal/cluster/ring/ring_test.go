package ring

import (
	"strings"
	"testing"

	"gccache/internal/model"
)

func mustRing(t *testing.T, nodes []string, replicas int, seed int64) *Ring {
	t.Helper()
	r, err := New(nodes, replicas, seed)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(nil, 8, 1); err == nil {
		t.Error("empty node set accepted")
	}
	if _, err := New([]string{"a", "a"}, 8, 1); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := New([]string{"a", ""}, 8, 1); err == nil {
		t.Error("empty node name accepted")
	}
	if _, err := New([]string{"a"}, 0, 1); err == nil {
		t.Error("zero replicas accepted")
	}
}

// TestPlacementIsDeterministic pins the contract the whole cluster
// leans on: equal (nodes, replicas, seed) route every item to the same
// owner with the same failover chain, across independently built rings
// and regardless of node-slice identity.
func TestPlacementIsDeterministic(t *testing.T) {
	nodes := []string{"10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000"}
	a := mustRing(t, nodes, 32, 77)
	b := mustRing(t, append([]string(nil), nodes...), 32, 77)
	for it := model.Item(0); it < 5000; it++ {
		if a.Owner(it) != b.Owner(it) {
			t.Fatalf("owner of %d diverged: %d vs %d", it, a.Owner(it), b.Owner(it))
		}
		ca, cb := a.Chain(it, 3), b.Chain(it, 3)
		if len(ca) != len(cb) {
			t.Fatalf("chain of %d diverged in length", it)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("chain of %d diverged at %d", it, i)
			}
		}
	}
}

func TestSeedChangesPlacement(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	a := mustRing(t, nodes, 32, 1)
	b := mustRing(t, nodes, 32, 2)
	diff := 0
	for it := model.Item(0); it < 2000; it++ {
		if a.Owner(it) != b.Owner(it) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical placement")
	}
}

// TestPlacementRoughlyBalances checks virtual nodes do their job: no
// node owns a wildly disproportionate share of a uniform item range.
func TestPlacementRoughlyBalances(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r := mustRing(t, nodes, 64, 9)
	counts := make([]int, len(nodes))
	const n = 40000
	for it := model.Item(0); it < n; it++ {
		counts[r.Owner(it)]++
	}
	want := n / len(nodes)
	for i, c := range counts {
		if c < want/3 || c > want*3 {
			t.Errorf("node %d owns %d of %d items (want ≈%d): balance broken", i, c, n, want)
		}
	}
}

// TestChainIsDistinctAndStartsAtOwner verifies the failover chain.
func TestChainIsDistinctAndStartsAtOwner(t *testing.T) {
	r := mustRing(t, []string{"a", "b", "c", "d", "e"}, 16, 3)
	for it := model.Item(0); it < 500; it++ {
		chain := r.Chain(it, 5)
		if len(chain) != 5 {
			t.Fatalf("item %d: chain has %d nodes, want 5", it, len(chain))
		}
		if chain[0] != r.Owner(it) {
			t.Fatalf("item %d: chain starts at %d, owner is %d", it, chain[0], r.Owner(it))
		}
		seen := map[int]bool{}
		for _, n := range chain {
			if seen[n] {
				t.Fatalf("item %d: chain repeats node %d", it, n)
			}
			seen[n] = true
		}
	}
	if got := r.Chain(0, 99); len(got) != 5 {
		t.Errorf("oversized max returned %d nodes, want 5", len(got))
	}
	if got := r.Chain(0, 0); len(got) != 1 || got[0] != r.Owner(0) {
		t.Errorf("max=0 chain = %v, want just the owner", got)
	}
}

func TestSuccessor(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	r := mustRing(t, nodes, 16, 5)
	for _, n := range nodes {
		s, ok := r.Successor(n)
		if !ok {
			t.Fatalf("Successor(%q) not found", n)
		}
		if s == n {
			t.Fatalf("Successor(%q) = itself", n)
		}
	}
	if _, ok := r.Successor("ghost"); ok {
		t.Error("Successor of an unknown node reported ok")
	}
	solo := mustRing(t, []string{"a"}, 4, 1)
	if _, ok := solo.Successor("a"); ok {
		t.Error("single-node ring reported a successor")
	}
}

func TestParseRingFile(t *testing.T) {
	in := "# cluster ring\n127.0.0.1:9101\n\n  127.0.0.1:9102\n# tail\n127.0.0.1:9103\n"
	nodes, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"127.0.0.1:9101", "127.0.0.1:9102", "127.0.0.1:9103"}
	if len(nodes) != len(want) {
		t.Fatalf("parsed %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("parsed %v, want %v", nodes, want)
		}
	}
	if _, err := Parse(strings.NewReader("# only comments\n")); err == nil {
		t.Error("empty ring file accepted")
	}
	if _, err := Parse(strings.NewReader("host one:9000\n")); err == nil {
		t.Error("address with whitespace accepted")
	}
}
