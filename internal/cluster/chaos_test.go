package cluster

import (
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"gccache/internal/cluster/ring"
	"gccache/internal/faults"
	"gccache/internal/model"
)

// chaosEvent is one scheduled disruption: kill or restart a node
// process, partition or heal its network link.
type chaosEvent struct {
	At   time.Duration
	Kind string // "kill", "restart", "partition", "heal"
	Node int
}

// sm64 is the SplitMix64 step + finalizer, matching internal/faults.
func sm64(x uint64) uint64 {
	x = x*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// chaosSchedule derives the disruption schedule purely from the seed:
// one node is killed and later restarted, a different node is
// partitioned and later healed. Rerunning with the same seed yields the
// identical schedule — asserted below, and the property the whole
// seeded-fault design exists for.
func chaosSchedule(seed int64, nodes int) []chaosEvent {
	victim := int(sm64(uint64(seed)) % uint64(nodes))
	cut := (victim + 1 + int(sm64(uint64(seed)+1)%uint64(nodes-1))) % nodes
	return []chaosEvent{
		{At: 250 * time.Millisecond, Kind: "kill", Node: victim},
		{At: 450 * time.Millisecond, Kind: "partition", Node: cut},
		{At: 850 * time.Millisecond, Kind: "heal", Node: cut},
		{At: 1000 * time.Millisecond, Kind: "restart", Node: victim},
	}
}

// TestClusterChaos is the issue's headline scenario: a 4-node ring
// behind fault-injecting proxies, driven by concurrent clients while a
// seeded schedule kills one node, partitions another, then heals and
// restarts — asserting the ring never stops honoring its contract:
//
//   - the accounting identity issued = served + retried-successfully +
//     rejected holds exactly;
//   - zero lost acknowledged ops: every ack covered its whole batch;
//   - the error rate stays bounded while faults are active;
//   - service recovers after every disruption within the failover
//     budget, and the post-heal tail serves cleanly;
//   - rerunning the generator with the same seed reproduces the
//     schedule event for event.
func TestClusterChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes ~2s of wall clock")
	}
	const (
		seed    = 2026
		nNodes  = 4
		runFor  = 1600 * time.Millisecond
		clients = 2
	)
	sched := chaosSchedule(seed, nNodes)
	if again := chaosSchedule(seed, nNodes); !reflect.DeepEqual(sched, again) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", sched, again)
	}
	kills, partitions := 0, 0
	for _, ev := range sched {
		switch ev.Kind {
		case "kill":
			kills++
		case "partition":
			partitions++
		}
	}
	if kills < 1 || partitions < 1 {
		t.Fatalf("schedule %v lacks a kill or a partition", sched)
	}

	// Ring: node ← proxy ← client, so partitions cut the link the
	// clients (and handoffs) actually use. Each proxy injects seeded
	// connection delays and a few outright drops for background noise.
	nodes := make([]*Node, nNodes)
	backends := make([]string, nNodes)
	proxies := make([]*faults.Proxy, nNodes)
	proxyAddrs := make([]string, nNodes)
	for i := range nodes {
		nd, err := NewNode(testNodeConfig("127.0.0.1:0"))
		if err != nil {
			t.Fatal(err)
		}
		addr, err := nd.Start()
		if err != nil {
			t.Fatal(err)
		}
		nodes[i], backends[i] = nd, addr
		inj := faults.New(faults.Plan{
			Seed: seed + int64(i), DropFrac: 0.03,
			ConnDelayFrac: 0.2, ConnDelay: 2 * time.Millisecond,
		})
		p, err := faults.NewProxy("127.0.0.1:0", addr, inj)
		if err != nil {
			t.Fatal(err)
		}
		proxies[i], proxyAddrs[i] = p, p.Addr()
	}
	defer func() {
		for _, p := range proxies {
			p.Close()
		}
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	r, err := ring.New(proxyAddrs, 16, seed)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(r, ClientConfig{
		Timeout: 120 * time.Millisecond,
		Retries: 1, BackoffBase: 4 * time.Millisecond, BackoffCap: 30 * time.Millisecond,
		BreakerThreshold: 3, BreakerCooldown: 150 * time.Millisecond,
		Seed: seed,
	})
	defer c.Close()

	// Success log: timestamp + latency of every acked batch, merged
	// across clients, for the recovery and p99 measurements.
	var logMu sync.Mutex
	type ack struct {
		at  time.Time
		lat time.Duration
	}
	var acks []ack

	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := uint64(seed + int64(g)*7919)
			batch := make([]model.Item, 0, 16)
			groups := map[int][]model.Item{}
			for time.Since(start) < runFor {
				batch = batch[:0]
				for i := 0; i < 16; i++ {
					rng = sm64(rng)
					batch = append(batch, model.Item(rng%testUniverse))
				}
				for k := range groups {
					groups[k] = groups[k][:0]
				}
				c.Route(batch, groups)
				for n := 0; n < r.Len(); n++ {
					if len(groups[n]) == 0 {
						continue
					}
					t0 := time.Now()
					if err := c.Do(groups[n]); err == nil {
						logMu.Lock()
						acks = append(acks, ack{at: time.Now(), lat: time.Since(t0)})
						logMu.Unlock()
					}
				}
			}
		}(g)
	}

	// The chaos driver applies the schedule at its offsets.
	applied := make([]time.Time, len(sched))
	for i, ev := range sched {
		time.Sleep(time.Until(start.Add(ev.At)))
		applied[i] = time.Now()
		switch ev.Kind {
		case "kill":
			nodes[ev.Node].Close()
		case "restart":
			nd, err := NewNode(NodeConfig{
				Addr: backends[ev.Node], K: testK, B: testB, Universe: testUniverse,
				NewCache: nodes[ev.Node].cfg.NewCache,
			})
			if err != nil {
				t.Errorf("restart build: %v", err)
				continue
			}
			if _, err := nd.Start(); err != nil {
				t.Errorf("restart %s: %v", backends[ev.Node], err)
				continue
			}
			nodes[ev.Node] = nd
		case "partition":
			proxies[ev.Node].SetPartitioned(true)
		case "heal":
			proxies[ev.Node].SetPartitioned(false)
		}
	}
	wg.Wait()

	st := c.Stats()
	t.Logf("chaos stats: %+v", st)
	if !st.Identity() {
		t.Fatalf("accounting identity broken: issued %d != %d served + %d retried + %d rejected",
			st.Issued, st.ServedFirstTry, st.RetriedOK, st.Rejected)
	}
	if st.AckMismatches != 0 {
		t.Fatalf("%d acknowledged batches were not fully applied", st.AckMismatches)
	}
	if st.Issued == 0 || len(acks) == 0 {
		t.Fatal("chaos run issued no batches")
	}
	if limit := st.Issued / 4; st.Rejected > limit {
		t.Errorf("error rate unbounded: %d of %d batches rejected (limit %d)", st.Rejected, st.Issued, limit)
	}
	if st.RetriedOK == 0 {
		t.Errorf("no batch ever needed a retry or failover — the faults did not bite: %+v", st)
	}

	sort.Slice(acks, func(i, j int) bool { return acks[i].at.Before(acks[j].at) })
	// Recovery: after every disruption some batch must be acked within
	// the failover budget (deadline + retries + breaker cooldown,
	// with slack for a CI scheduler).
	const budget = 1200 * time.Millisecond
	for i, ev := range sched {
		rec := time.Duration(-1)
		for _, a := range acks {
			if a.at.After(applied[i]) {
				rec = a.at.Sub(applied[i])
				break
			}
		}
		if rec < 0 || rec > budget {
			t.Errorf("no ack within %v after %s of node %d (recovery %v)", budget, ev.Kind, ev.Node, rec)
		} else {
			t.Logf("recovery after %s(node %d): %v", ev.Kind, ev.Node, rec)
		}
	}
	// The post-heal tail (everything after the last event) must serve.
	tail := 0
	for _, a := range acks {
		if a.at.After(applied[len(applied)-1]) {
			tail++
		}
	}
	if tail == 0 {
		t.Error("no acks after the final heal/restart — the ring did not recover")
	}
	lats := make([]time.Duration, len(acks))
	for i, a := range acks {
		lats[i] = a.lat
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50, p99 := lats[len(lats)*50/100], lats[len(lats)*99/100]
	t.Logf("acked %d batches; latency p50=%v p99=%v; failovers=%d breakerSkips=%d",
		len(acks), p50, p99, st.Failovers, st.BreakerSkips)
}
