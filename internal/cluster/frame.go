// Package cluster turns gcserve into a multi-node cache ring: a
// length-prefixed binary wire protocol over TCP, a consistent-hash
// router (internal/cluster/ring) with per-node circuit breakers and
// capped-backoff retries on the client, and node lifecycle — drain,
// snapshot handoff via internal/checkpoint, restart — that keeps the
// ring serving through process kills and network partitions.
//
// The design goal is the one the chaos harness asserts: no acknowledged
// operation is ever lost (an ack means the full batch was applied and
// counted on some node), errors stay bounded while faults are active,
// and a node's policy state survives a graceful leave byte-identically
// on its handoff target. Fault semantics are at-least-once: a timed-out
// request may have been applied before the ack was lost, so a retry can
// double-apply — harmless for cache accesses, and the accounting
// identity (issued = served + retried-successfully + rejected) is kept
// on the client, where it is robust to node kills.
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"gccache/internal/model"
)

// Frame types. A frame on the wire is one type byte, a uvarint payload
// length, then the payload — the same varint codec style as the
// gctrace format, so the decoder shares its hardening posture: every
// declared length is capped before a byte of it is trusted.
const (
	fAccessReq   = 0x01 // uvarint seq, uvarint count, count zig-zag item deltas
	fAccessResp  = 0x02 // uvarint seq, uvarint served, uvarint hits, uvarint misses
	fHealthReq   = 0x03 // empty
	fHealthResp  = 0x04 // state byte, uvarint accesses
	fHandoffReq  = 0x05 // checkpoint snapshot bytes
	fHandoffResp = 0x06 // empty
	fError       = 0x07 // uvarint code, uvarint len, message bytes
)

// Decoder limits. maxFramePayload bounds what a peer can make us buffer
// for a single frame; the others bound the per-field declarations
// inside a payload so a tiny frame cannot demand a huge allocation.
const (
	maxFramePayload = 1 << 24 // 16 MiB: a full handoff snapshot fits far below this
	maxBatchItems   = 1 << 16
	maxErrMsgLen    = 1 << 10
)

// DefaultReplicas is the virtual-node count every ring participant
// uses unless configured otherwise; consistent placement requires the
// clients and servers of one ring to agree on it (and on the seed).
const DefaultReplicas = 64

// Error codes carried by fError frames.
const (
	errDraining = 1 // node is draining or stopped: retry elsewhere
	errBadFrame = 2 // peer sent something the node refused to parse
	errInternal = 3 // node-side failure applying a valid request
)

// WireError is a structured error returned by a node. IsDraining
// distinguishes "routed to a node that is leaving" — an expected,
// immediately-failover-able outcome — from protocol or node failures.
type WireError struct {
	Code uint64
	Msg  string
}

func (e *WireError) Error() string {
	return fmt.Sprintf("cluster: node error %d: %s", e.Code, e.Msg)
}

// IsDraining reports whether the node rejected the request because it
// is draining: the caller should fail over without retrying this node.
func (e *WireError) IsDraining() bool { return e.Code == errDraining }

// appendFrame appends a complete frame (type, length, payload) to dst.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// writeFrame writes one frame and flushes.
func writeFrame(bw *bufio.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("cluster: refusing to send %d-byte payload (cap %d)", len(payload), maxFramePayload)
	}
	var hdr [binary.MaxVarintLen64 + 1]byte
	hdr[0] = typ
	n := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := bw.Write(hdr[:1+n]); err != nil {
		return err
	}
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	return bw.Flush()
}

// readFrame reads one frame, reusing buf for the payload when it fits.
// A declared length beyond maxFramePayload is rejected before any of it
// is read, so a hostile peer cannot make us allocate more than the cap.
func readFrame(br *bufio.Reader, buf []byte) (typ byte, payload []byte, err error) {
	typ, err = br.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, fmt.Errorf("cluster: truncated frame length: %w", err)
	}
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("cluster: frame payload %d exceeds cap %d", n, maxFramePayload)
	}
	if uint64(cap(buf)) >= n {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("cluster: truncated frame payload: %w", err)
	}
	return typ, payload, nil
}

// payloadDecoder walks a frame payload with bounds checking. Varints
// must be minimal-length: a value padded with zero continuation groups
// decodes to the same number but breaks the canonical-form guarantee
// (every accepted payload re-encodes byte-identically), so it is
// rejected like any other malformed input.
type payloadDecoder struct {
	b   []byte
	off int
}

// minimal reports whether the n-byte varint just read was the shortest
// encoding of its value: only a single-byte varint may end in 0x00.
func (d *payloadDecoder) minimal(n int) bool {
	return n == 1 || d.b[d.off+n-1] != 0
}

func (d *payloadDecoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("cluster: truncated %s", what)
	}
	if !d.minimal(n) {
		return 0, fmt.Errorf("cluster: non-minimal varint in %s", what)
	}
	d.off += n
	return v, nil
}

func (d *payloadDecoder) varint(what string) (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("cluster: truncated %s", what)
	}
	if !d.minimal(n) {
		return 0, fmt.Errorf("cluster: non-minimal varint in %s", what)
	}
	d.off += n
	return v, nil
}

func (d *payloadDecoder) done(what string) error {
	if d.off != len(d.b) {
		return fmt.Errorf("cluster: %d trailing bytes after %s", len(d.b)-d.off, what)
	}
	return nil
}

// appendAccessReq encodes an access request: the batch is delta
// zig-zag coded like a gctrace, so dense item runs cost ~1 byte each.
func appendAccessReq(dst []byte, seq uint64, items []model.Item) []byte {
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(len(items)))
	prev := int64(0)
	for _, it := range items {
		v := int64(it)
		dst = binary.AppendVarint(dst, v-prev)
		prev = v
	}
	return dst
}

// decodeAccessReq parses an access request payload, appending the items
// to dst (callers reuse the slice across frames).
func decodeAccessReq(p []byte, dst []model.Item) (seq uint64, items []model.Item, err error) {
	d := &payloadDecoder{b: p}
	if seq, err = d.uvarint("access seq"); err != nil {
		return 0, nil, err
	}
	n, err := d.uvarint("access item count")
	if err != nil {
		return 0, nil, err
	}
	if n > maxBatchItems {
		return 0, nil, fmt.Errorf("cluster: implausible batch of %d items (cap %d)", n, maxBatchItems)
	}
	// The count is capped AND each item needs ≥ 1 payload byte, so the
	// append below can never outgrow the frame it came from.
	if n > uint64(len(p)) {
		return 0, nil, fmt.Errorf("cluster: batch of %d items exceeds remaining input", n)
	}
	items = dst
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		delta, err := d.varint("access item delta")
		if err != nil {
			return 0, nil, err
		}
		prev += delta
		if prev < 0 {
			return 0, nil, fmt.Errorf("cluster: access batch decodes to negative item %d", prev)
		}
		items = append(items, model.Item(prev))
	}
	return seq, items, d.done("access request")
}

// accessResp is a node's answer to one access batch.
type accessResp struct {
	Seq    uint64
	Served uint64 // items applied — an ack covers the batch iff Served == len(batch)
	Hits   uint64
	Misses uint64
}

func appendAccessResp(dst []byte, r accessResp) []byte {
	dst = binary.AppendUvarint(dst, r.Seq)
	dst = binary.AppendUvarint(dst, r.Served)
	dst = binary.AppendUvarint(dst, r.Hits)
	return binary.AppendUvarint(dst, r.Misses)
}

func decodeAccessResp(p []byte) (accessResp, error) {
	d := &payloadDecoder{b: p}
	var r accessResp
	var err error
	if r.Seq, err = d.uvarint("response seq"); err != nil {
		return r, err
	}
	if r.Served, err = d.uvarint("response served"); err != nil {
		return r, err
	}
	if r.Hits, err = d.uvarint("response hits"); err != nil {
		return r, err
	}
	if r.Misses, err = d.uvarint("response misses"); err != nil {
		return r, err
	}
	return r, d.done("access response")
}

// Node lifecycle states carried in health responses.
const (
	stateReady    = 0
	stateDraining = 1
	stateStopped  = 2
)

// healthResp reports a node's lifecycle state and access count.
type healthResp struct {
	State    byte
	Accesses uint64
}

func appendHealthResp(dst []byte, h healthResp) []byte {
	dst = append(dst, h.State)
	return binary.AppendUvarint(dst, h.Accesses)
}

func decodeHealthResp(p []byte) (healthResp, error) {
	var h healthResp
	if len(p) < 1 {
		return h, fmt.Errorf("cluster: empty health response")
	}
	h.State = p[0]
	if h.State > stateStopped {
		return h, fmt.Errorf("cluster: unknown node state %d", h.State)
	}
	d := &payloadDecoder{b: p, off: 1}
	var err error
	if h.Accesses, err = d.uvarint("health accesses"); err != nil {
		return h, err
	}
	return h, d.done("health response")
}

func appendErrorFrame(dst []byte, code uint64, msg string) []byte {
	if len(msg) > maxErrMsgLen {
		msg = msg[:maxErrMsgLen]
	}
	dst = binary.AppendUvarint(dst, code)
	dst = binary.AppendUvarint(dst, uint64(len(msg)))
	return append(dst, msg...)
}

func decodeErrorFrame(p []byte) (*WireError, error) {
	d := &payloadDecoder{b: p}
	code, err := d.uvarint("error code")
	if err != nil {
		return nil, err
	}
	n, err := d.uvarint("error message length")
	if err != nil {
		return nil, err
	}
	if n > maxErrMsgLen {
		return nil, fmt.Errorf("cluster: implausible error message length %d (cap %d)", n, maxErrMsgLen)
	}
	if n > uint64(len(p)-d.off) {
		return nil, fmt.Errorf("cluster: error message length %d exceeds remaining input", n)
	}
	msg := string(p[d.off : d.off+int(n)])
	d.off += int(n)
	return &WireError{Code: code, Msg: msg}, d.done("error frame")
}
