package gccache_test

import (
	"fmt"

	"gccache"
)

// ExampleRunCold demonstrates the basic simulation loop: an IBLP cache
// over 4-item blocks serving a trace with perfect spatial locality.
func ExampleRunCold() {
	geo := gccache.NewFixedGeometry(4)
	c := gccache.NewIBLP(8, 8, geo)
	tr := gccache.Trace{0, 1, 2, 3, 4, 5, 6, 7}
	st := gccache.RunCold(c, tr)
	fmt.Printf("misses=%d spatial-hits=%d\n", st.Misses, st.SpatialHits)
	// Output: misses=2 spatial-hits=6
}

// ExampleNewBlockLRU shows Theorem 3's pollution effect: one live item
// per block makes a Block Cache behave like a cache B× smaller.
func ExampleNewBlockLRU() {
	geo := gccache.NewFixedGeometry(4)
	blockCache := gccache.NewBlockLRU(8, geo) // 2 block frames
	itemCache := gccache.NewItemLRU(8)
	tr := gccache.Trace{0, 4, 8}               // three blocks, one item each
	tr = append(tr, gccache.Trace{0, 4, 8}...) // repeat
	fmt.Println("block-lru misses:", gccache.RunCold(blockCache, tr).Misses)
	fmt.Println("item-lru misses:", gccache.RunCold(itemCache, tr).Misses)
	// Output:
	// block-lru misses: 6
	// item-lru misses: 3
}

// ExampleSleatorTarjan evaluates the classic bound next to the paper's
// GC bounds at the same parameters.
func ExampleSleatorTarjan() {
	k, h, B := 1024.0, 128.0, 64.0
	fmt.Printf("traditional: %.2f\n", gccache.SleatorTarjan(k, h))
	fmt.Printf("gc item-cache bound: %.2f\n", gccache.ItemCacheLowerBound(k, h, B))
	fmt.Printf("gc iblp upper bound: %.2f\n", gccache.IBLPKnownSizeRatio(k, h, B))
	// Output:
	// traditional: 1.14
	// gc item-cache bound: 68.57
	// gc iblp upper bound: 20.31
}

// ExampleBelady brackets the offline optimum of a scan under granularity
// change: one unit-cost load per block suffices.
func ExampleBelady() {
	geo := gccache.NewFixedGeometry(4)
	tr := gccache.Trace{}
	for i := 0; i < 32; i++ {
		tr = append(tr, gccache.Item(i))
	}
	fmt.Println("item-granularity optimum:", gccache.Belady(tr, 8))
	est := gccache.EstimateOptimal(tr, geo, 8)
	fmt.Printf("gc optimum: %d ≤ OPT ≤ %d\n", est.Lower, est.Upper)
	// Output:
	// item-granularity optimum: 32
	// gc optimum: 8 ≤ OPT ≤ 8
}

// ExampleNewValidator certifies a policy against the paper's model.
func ExampleNewValidator() {
	geo := gccache.NewFixedGeometry(4)
	v := gccache.NewValidator(gccache.NewGCM(16, geo, 1), geo)
	tr, _ := gccache.GenerateWorkload("cyclic:n=32,len=5000", 1)
	gccache.Run(v, tr)
	fmt.Println("violations:", v.Err())
	// Output: violations: <nil>
}
